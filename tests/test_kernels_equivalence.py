"""Vectorized vs reference kernels: bit-identical everything.

The vectorized kernel layer (``repro.kernels``) rewrites the
pollute → detect → repair hot path as numpy bulk operations, but the
contract is stronger than "same answers": every corrupt call must also
*consume the rng stream identically* to the row-at-a-time reference
kernels, so seeded traces — including the committed golden benchmark
traces — stay byte-stable regardless of the mode. This suite pins that
contract for:

* all five error-type injectors (values AND post-call generator state);
* all detectors and repairers;
* FD discovery, confidence, and violation listing (plus the token-keyed
  pair-stats cache);
* full COMET sessions with the :class:`AlgorithmicCleaner` on a CleanML
  dataset and a synthetic polluted dataset, including a
  checkpoint/resume round-trip.
"""

import numpy as np
import pytest

from repro.core import CometConfig
from repro.datasets import load_cleanml, load_dataset, pollute
from repro.detect import (
    AlgorithmicCleaner,
    CategoricalShiftDetector,
    ConditionalModeRepairer,
    MeanRepairer,
    MedianRepairer,
    MissingValueDetector,
    ModeRepairer,
    NoiseDetector,
    ScalingDetector,
    clear_fd_cache,
    discover_fds,
    fd_cache_stats,
)
from repro.errors import (
    CategoricalShift,
    GaussianNoise,
    InconsistentRepresentation,
    MissingValues,
    Polluter,
    Scaling,
)
from repro.frame import Column, DataFrame
from repro.kernels import kernel_mode, set_kernel_mode, use_kernels
from repro.session import CleaningSession


def both_modes(fn):
    """Run ``fn()`` under each kernel mode; return (reference, vectorized).

    The FD pair-stats cache is cleared before each run so neither mode
    can lean on state the other produced.
    """
    out = {}
    for mode in ("reference", "vectorized"):
        clear_fd_cache()
        with use_kernels(mode):
            out[mode] = fn()
    clear_fd_cache()
    return out["reference"], out["vectorized"]


def assert_values_equal(a, b):
    a = np.asarray(a, dtype=object)
    b = np.asarray(b, dtype=object)
    assert len(a) == len(b)
    for x, y in zip(a.tolist(), b.tolist()):
        if isinstance(x, float) and isinstance(y, float):
            assert (np.isnan(x) and np.isnan(y)) or x == y
        else:
            assert type(x) is type(y) and (x is y or x == y)


# --------------------------------------------------------------------- #
# Injector equivalence: values and rng-stream consumption.
# --------------------------------------------------------------------- #

def _numeric_column(n=400, seed=1, with_nan=False):
    rng = np.random.default_rng(seed)
    values = rng.normal(50.0, 5.0, n)
    if with_nan:
        values[rng.choice(n, n // 10, replace=False)] = np.nan
    return Column("num", values)


def _categorical_column(n=400, seed=2, with_none=False):
    rng = np.random.default_rng(seed)
    values = rng.choice(["alpha", "beta", "gamma", "delta"], n).astype(object)
    if with_none:
        values[rng.choice(n, n // 10, replace=False)] = None
    return Column("cat", values)


ERROR_CASES = [
    pytest.param(MissingValues(), _numeric_column, id="missing-num"),
    pytest.param(MissingValues(), _categorical_column, id="missing-cat"),
    pytest.param(GaussianNoise(), _numeric_column, id="noise"),
    pytest.param(Scaling(), _numeric_column, id="scaling"),
    pytest.param(CategoricalShift(), _categorical_column, id="categorical"),
    pytest.param(InconsistentRepresentation(), _categorical_column, id="inconsistent"),
    pytest.param(
        GaussianNoise(),
        lambda: _numeric_column(with_nan=True),
        id="noise-with-nan",
    ),
    pytest.param(
        CategoricalShift(),
        lambda: _categorical_column(with_none=True),
        id="categorical-with-none",
    ),
    pytest.param(
        InconsistentRepresentation(),
        lambda: _categorical_column(with_none=True),
        id="inconsistent-with-none",
    ),
]


class TestCorruptEquivalence:
    @pytest.mark.parametrize("error,make_column", ERROR_CASES)
    def test_values_and_rng_stream(self, error, make_column):
        column = make_column()
        rows = np.sort(np.random.default_rng(9).choice(len(column), 60, replace=False))

        def run():
            rng = np.random.default_rng(1234)
            values = error.corrupt(column, rows, rng)
            return values, rng.bit_generator.state

        (ref_values, ref_state), (vec_values, vec_state) = both_modes(run)
        assert isinstance(vec_values, np.ndarray)
        assert_values_equal(ref_values, vec_values)
        # The load-bearing half of the contract: identical generator
        # state afterwards means every downstream seeded draw matches.
        assert ref_state == vec_state

    @pytest.mark.parametrize("error,make_column", ERROR_CASES)
    def test_empty_rows(self, error, make_column):
        column = make_column()
        rows = np.array([], dtype=int)

        def run():
            rng = np.random.default_rng(7)
            return error.corrupt(column, rows, rng), rng.bit_generator.state

        (ref_values, ref_state), (vec_values, vec_state) = both_modes(run)
        assert len(ref_values) == len(vec_values) == 0
        assert ref_state == vec_state

    def test_corrupt_returns_ndarray_in_both_modes(self):
        column = _numeric_column()
        rows = np.array([0, 1, 2])
        for mode in ("reference", "vectorized"):
            with use_kernels(mode):
                out = GaussianNoise().corrupt(column, rows, np.random.default_rng(0))
            assert isinstance(out, np.ndarray)


class TestPolluterEquivalence:
    @pytest.mark.parametrize(
        "error,feature",
        [
            pytest.param(MissingValues(), "num", id="missing"),
            pytest.param(GaussianNoise(), "num", id="noise"),
            pytest.param(CategoricalShift(), "cat", id="categorical"),
        ],
    )
    def test_incremental_states_identical(self, error, feature):
        frame = DataFrame(
            {"num": _numeric_column(300).values, "cat": _categorical_column(300).values}
        )

        def run():
            polluter = Polluter(error, step=0.05, n_combinations=2, rng=11)
            trajectories = polluter.incremental_states(frame, feature, n_steps=4)
            return [
                (s.level, s.rows.tolist(), s.frame.to_dict())
                for states in trajectories
                for s in states
            ]

        ref, vec = both_modes(run)
        assert len(ref) == len(vec) == 8
        for (rl, rr, rf), (vl, vv, vf) in zip(ref, vec):
            assert rl == vl
            assert rr == vv
            assert rf.keys() == vf.keys()
            for name in rf:
                assert_values_equal(rf[name], vf[name])


# --------------------------------------------------------------------- #
# Detector / repairer / FD equivalence.
# --------------------------------------------------------------------- #

@pytest.fixture(scope="module")
def detect_frame():
    rng = np.random.default_rng(3)
    n = 600
    group = rng.choice(["g1", "g2", "g3", "g4"], n).astype(object)
    dep = np.array(["d_" + g for g in group], dtype=object)
    dep[rng.choice(n, 30, replace=False)] = rng.choice(["d_g1", "d_g2"], 30)
    dep[rng.choice(n, 15, replace=False)] = None
    num = rng.normal(40.0, 4.0, n)
    num[rng.choice(n, 20, replace=False)] *= 100.0  # scaling-style outliers
    num[rng.choice(n, 10, replace=False)] = np.nan
    return DataFrame({"dep": dep, "group": group, "num": num})


DETECTOR_CASES = [
    pytest.param(MissingValueDetector(), "num", id="missing"),
    pytest.param(ScalingDetector(), "num", id="scaling"),
    pytest.param(NoiseDetector(), "num", id="noise"),
    pytest.param(CategoricalShiftDetector(min_confidence=0.5), "dep", id="categorical"),
]


class TestDetectorEquivalence:
    @pytest.mark.parametrize("detector,feature", DETECTOR_CASES)
    def test_rows_and_scores(self, detect_frame, detector, feature):
        ref, vec = both_modes(lambda: detector.detect(detect_frame, feature))
        assert ref.rows.tolist() == vec.rows.tolist()
        assert ref.scores.tolist() == vec.scores.tolist()


REPAIRER_CASES = [
    pytest.param(MeanRepairer(), "num", id="mean"),
    pytest.param(MedianRepairer(), "num", id="median"),
    pytest.param(ModeRepairer(), "dep", id="mode"),
    pytest.param(ConditionalModeRepairer(condition_on="group"), "dep", id="cond-mode"),
    pytest.param(ConditionalModeRepairer(), "dep", id="cond-mode-auto"),
]


class TestRepairerEquivalence:
    @pytest.mark.parametrize("repairer,feature", REPAIRER_CASES)
    def test_repairs(self, detect_frame, repairer, feature):
        rows = np.sort(np.random.default_rng(5).choice(600, 40, replace=False))
        ref, vec = both_modes(
            lambda: list(repairer.repair(detect_frame, feature, rows))
        )
        assert_values_equal(ref, vec)

    @pytest.mark.parametrize("repairer,feature", REPAIRER_CASES)
    def test_applied_frames_identical(self, detect_frame, repairer, feature):
        rows = np.sort(np.random.default_rng(6).choice(600, 25, replace=False))
        ref, vec = both_modes(
            lambda: repairer.apply(detect_frame, feature, rows)
        )
        assert ref == vec


class TestFDEquivalence:
    def test_discovery_confidence_and_violations(self, detect_frame):
        def run():
            fds = discover_fds(detect_frame, min_confidence=0.4, min_group_size=2)
            return [
                (fd.lhs, fd.rhs, fd.confidence, fd.violations(detect_frame).tolist())
                for fd in fds
            ]

        ref, vec = both_modes(run)
        assert ref == vec
        assert ref  # the fixture is built to contain discoverable FDs

    def test_pair_stats_cache_hits_on_unchanged_columns(self, detect_frame):
        clear_fd_cache()
        fd_cache_stats(reset=True)
        discover_fds(detect_frame, min_confidence=0.4)
        first = fd_cache_stats()
        assert first["misses"] > 0
        discover_fds(detect_frame, min_confidence=0.4)
        second = fd_cache_stats()
        # Same column tokens → every pair is served from the cache.
        assert second["misses"] == first["misses"]
        assert second["hits"] > first["hits"]
        clear_fd_cache()

    def test_cache_misses_after_column_mutation(self, detect_frame):
        frame = detect_frame.copy()
        clear_fd_cache()
        fd_cache_stats(reset=True)
        discover_fds(frame, min_confidence=0.4)
        misses = fd_cache_stats()["misses"]
        frame["dep"].set_values(np.array([0]), np.array(["d_g2"], dtype=object))
        discover_fds(frame, min_confidence=0.4)
        # Mutation minted a fresh token; pairs touching "dep" recompute.
        assert fd_cache_stats()["misses"] > misses
        clear_fd_cache()


# --------------------------------------------------------------------- #
# Full-session traces: CleanML + synthetic, with checkpoint/resume.
# --------------------------------------------------------------------- #

def _run_session(polluted, error_types, tmp_path=None):
    session = CleaningSession.create(
        polluted,
        algorithm="lor",
        error_types=error_types,
        budget=4.0,
        config=CometConfig(step=0.05),
        rng=0,
        cleaner=AlgorithmicCleaner(step=0.05, rng=0),
    )
    if tmp_path is None:
        return session.run()
    # Checkpoint mid-run, reload, and finish from disk.
    session.step()
    path = tmp_path / "session.ckpt"
    session.save(path)
    session.close()
    resumed = CleaningSession.load(path)
    trace = resumed.run()
    resumed.close()
    return trace


class TestSessionTraceEquivalence:
    def test_synthetic_dataset_trace(self):
        def run():
            dataset = load_dataset("cmc", n_rows=200, rng=0)
            polluted = pollute(dataset, error_types=["missing"], rng=6)
            return _run_session(polluted, ["missing"])

        ref, vec = both_modes(run)
        assert ref == vec
        assert ref.records

    def test_cleanml_dataset_trace(self):
        def run():
            polluted = load_cleanml("titanic", n_rows=160, rng=0)
            return _run_session(polluted, ["missing"])

        ref, vec = both_modes(run)
        assert ref == vec

    def test_checkpoint_resume_round_trip(self, tmp_path):
        def uninterrupted():
            dataset = load_dataset("cmc", n_rows=200, rng=0)
            polluted = pollute(dataset, error_types=["missing"], rng=6)
            return _run_session(polluted, ["missing"])

        def resumed(mode_dir):
            dataset = load_dataset("cmc", n_rows=200, rng=0)
            polluted = pollute(dataset, error_types=["missing"], rng=6)
            return _run_session(polluted, ["missing"], tmp_path=mode_dir)

        ref_full, vec_full = both_modes(uninterrupted)
        for mode, full in (("reference", ref_full), ("vectorized", vec_full)):
            clear_fd_cache()
            mode_dir = tmp_path / mode
            mode_dir.mkdir()
            with use_kernels(mode):
                assert resumed(mode_dir) == full
        # All four traces — both modes, interrupted or not — agree.
        assert ref_full == vec_full


class TestKernelSwitch:
    def test_vectorized_is_default(self):
        assert kernel_mode() == "vectorized"

    def test_set_and_restore(self):
        previous = set_kernel_mode("reference")
        try:
            assert kernel_mode() == "reference"
        finally:
            set_kernel_mode(previous)
        assert kernel_mode() == "vectorized"

    def test_use_kernels_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_kernels("reference"):
                raise RuntimeError("boom")
        assert kernel_mode() == "vectorized"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            set_kernel_mode("simd")
