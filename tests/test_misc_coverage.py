"""Remaining corner coverage: reporting internals, io inference, cost-model
defaults, and mixed-error COMET sessions."""

import numpy as np
import pytest

from repro import Comet, CometConfig, load_dataset, pollute
from repro.cleaning import Budget, ConstantCost, CostModel
from repro.core import session_report
from repro.experiments import ascii_plot
from repro.frame import read_csv


class TestIoInference:
    def test_all_numeric_strings_become_numeric(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1,x\n2,y\n")
        frame = read_csv(path)
        assert frame["a"].is_numeric
        assert frame["b"].is_categorical

    def test_mixed_column_becomes_categorical(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a\n1\ntwo\n")
        frame = read_csv(path)
        assert frame["a"].is_categorical

    def test_all_missing_column_is_categorical(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n,1\nNA,2\n")
        frame = read_csv(path)
        assert frame["a"].n_missing == 2


class TestCostModelDefaults:
    def test_unlisted_error_uses_default(self):
        model = CostModel(by_error={}, default=ConstantCost(3.0))
        assert model.next_cost("f", "anything") == 3.0

    def test_budget_repr(self):
        budget = Budget(10.0)
        budget.charge(2.5)
        assert "2.5" in repr(budget) and "10" in repr(budget)


class TestAsciiPlotMarkers:
    def test_many_curves_cycle_markers(self):
        curves = {f"c{i}": np.linspace(0, i + 1, 5) for i in range(10)}
        text = ascii_plot(curves)
        assert "c9" in text  # all curves make it into the legend


class TestMixedErrorSession:
    def test_comet_with_inconsistent_and_missing(self):
        dataset = load_dataset("s-credit", n_rows=180, rng=0)
        polluted = pollute(
            dataset, error_types=["missing", "inconsistent"], rng=7
        )
        comet = Comet(
            polluted,
            algorithm="lor",
            error_types=["missing", "inconsistent"],
            budget=4.0,
            config=CometConfig(step=0.03),
            rng=0,
        )
        trace = comet.run()
        assert trace.records
        report = session_report(trace, title="mixed errors")
        assert "## Iterations" in report
        assert "budget spent: 4" in report

    def test_session_report_of_real_run_mentions_features(self):
        dataset = load_dataset("eeg", n_rows=160, rng=0)
        polluted = pollute(dataset, error_types=["missing"], rng=8)
        comet = Comet(
            polluted, algorithm="lor", error_types=["missing"],
            budget=3.0, config=CometConfig(step=0.04), rng=0,
        )
        trace = comet.run()
        report = session_report(trace)
        assert any(r.feature in report for r in trace.records)
