"""Behavioural tests for every classifier in the ML substrate."""

import numpy as np
import pytest

from repro.ml import (
    GradientBoostingClassifier,
    KNeighborsClassifier,
    LinearRegressionClassifier,
    LinearSVC,
    LogisticRegression,
    MLPClassifier,
    available_algorithms,
    clone,
    f1_score,
    make_classifier,
)
from repro.ml.registry import hyperparameter_space

ALL_NAMES = ["svm", "knn", "mlp", "gb", "lir", "lor", "ac_svm"]


def _blobs(n=240, d=4, k=2, sep=3.0, seed=0):
    """Well-separated Gaussian blobs — every sane classifier should ace them."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=sep, size=(k, d))
    y = rng.integers(0, k, size=n)
    X = centers[y] + rng.normal(size=(n, d))
    return X, y


@pytest.mark.parametrize("name", ALL_NAMES)
class TestEveryClassifier:
    def test_learns_separable_binary(self, name):
        X, y = _blobs()
        model = make_classifier(name).fit(X[:180], y[:180])
        assert f1_score(y[180:], model.predict(X[180:])) > 0.9

    def test_learns_three_classes(self, name):
        X, y = _blobs(k=3, sep=4.0, seed=1)
        model = make_classifier(name).fit(X[:180], y[:180])
        assert f1_score(y[180:], model.predict(X[180:])) > 0.8

    def test_predict_shape_and_labels(self, name):
        X, y = _blobs(n=60)
        model = make_classifier(name).fit(X, y)
        pred = model.predict(X)
        assert pred.shape == (60,)
        assert set(np.unique(pred)).issubset(set(np.unique(y)))

    def test_clone_is_unfitted_same_params(self, name):
        model = make_classifier(name)
        dup = clone(model)
        assert dup.get_params() == model.get_params()
        assert not dup.is_fitted()

    def test_nan_input_raises(self, name):
        X, y = _blobs(n=30)
        X[0, 0] = np.nan
        with pytest.raises(ValueError, match="NaN|impute"):
            make_classifier(name).fit(X, y)

    def test_nonconstant_labels_required(self, name):
        X, y = _blobs(n=30)
        model = make_classifier(name).fit(X, np.zeros(30, dtype=int))
        # Degenerate single-class training must still predict that class.
        assert set(model.predict(X)) == {0}

    def test_hyperparameter_space_is_valid(self, name):
        space = hyperparameter_space(name)
        model = make_classifier(name)
        for key, values in space.items():
            model.set_params(**{key: values[0]})


class TestRegistry:
    def test_available_algorithms(self):
        assert set(ALL_NAMES) == set(available_algorithms())

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            make_classifier("deep-transformer")

    def test_unknown_space_raises(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            hyperparameter_space("nope")


class TestGradientAccess:
    """The convex learners expose per-sample gradients for ActiveClean."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: LinearSVC(),
            lambda: LogisticRegression(),
            lambda: LinearRegressionClassifier(),
        ],
    )
    def test_gradient_norms_nonnegative(self, factory):
        X, y = _blobs(n=100)
        model = factory().fit(X, y)
        norms = model.gradient_norms(X, y)
        assert norms.shape == (100,)
        assert (norms >= 0.0).all()

    def test_misclassified_points_have_larger_gradient(self):
        X, y = _blobs(n=200, sep=2.5, seed=3)
        model = LogisticRegression().fit(X, y)
        pred = model.predict(X)
        wrong = pred != y
        if wrong.any() and (~wrong).any():
            norms = model.gradient_norms(X, y)
            assert norms[wrong].mean() > norms[~wrong].mean()


class TestKnnSpecifics:
    def test_k_one_memorizes(self):
        X, y = _blobs(n=50, seed=2)
        model = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        assert (model.predict(X) == y).all()

    def test_invalid_k_raises(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(n_neighbors=0)

    def test_k_clamped_to_train_size(self):
        X, y = _blobs(n=10)
        model = KNeighborsClassifier(n_neighbors=50).fit(X, y)
        model.predict(X)  # must not raise

    def test_proba_rows_sum_to_one(self):
        X, y = _blobs(n=40)
        model = KNeighborsClassifier(n_neighbors=5).fit(X, y)
        assert np.allclose(model.predict_proba(X).sum(axis=1), 1.0)


class TestBoostingSpecifics:
    def test_more_estimators_fit_train_better(self):
        X, y = _blobs(n=200, sep=1.0, seed=4)
        weak = GradientBoostingClassifier(n_estimators=2).fit(X, y)
        strong = GradientBoostingClassifier(n_estimators=60).fit(X, y)
        assert f1_score(y, strong.predict(X)) >= f1_score(y, weak.predict(X))

    def test_subsample_validation(self):
        X, y = _blobs(n=30)
        with pytest.raises(ValueError, match="subsample"):
            GradientBoostingClassifier(subsample=0.0).fit(X, y)

    def test_deterministic_given_seed(self):
        X, y = _blobs(n=80)
        a = GradientBoostingClassifier(subsample=0.7, random_state=5).fit(X, y)
        b = GradientBoostingClassifier(subsample=0.7, random_state=5).fit(X, y)
        assert (a.predict(X) == b.predict(X)).all()


class TestMlpSpecifics:
    def test_deterministic_given_seed(self):
        X, y = _blobs(n=80)
        a = MLPClassifier(random_state=7, max_epochs=20).fit(X, y)
        b = MLPClassifier(random_state=7, max_epochs=20).fit(X, y)
        assert (a.predict(X) == b.predict(X)).all()

    def test_proba_rows_sum_to_one(self):
        X, y = _blobs(n=40)
        model = MLPClassifier(max_epochs=10).fit(X, y)
        assert np.allclose(model.predict_proba(X).sum(axis=1), 1.0)

    def test_two_hidden_layers(self):
        X, y = _blobs(n=100)
        model = MLPClassifier(hidden_sizes=(16, 8), max_epochs=30).fit(X, y)
        assert f1_score(y, model.predict(X)) > 0.8
