"""Unit tests for repro.ml.metrics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ml import (
    accuracy_score,
    confusion_matrix,
    f1_score,
    mean_absolute_error,
    precision_score,
    recall_score,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy_score([0, 1, 1], [0, 1, 1]) == 1.0

    def test_half(self):
        assert accuracy_score([0, 1], [0, 0]) == 0.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy_score([0, 1], [0])


class TestPrecisionRecall:
    def test_precision(self):
        # predicted positive: indices 1,2 → one correct
        assert precision_score([0, 1, 0], [0, 1, 1]) == 0.5

    def test_recall(self):
        # actual positives: indices 1,2 → one found
        assert recall_score([0, 1, 1], [0, 1, 0]) == 0.5

    def test_precision_no_predictions_is_zero(self):
        assert precision_score([1, 1], [0, 0]) == 0.0

    def test_recall_no_positives_is_zero(self):
        assert recall_score([0, 0], [1, 1]) == 0.0


class TestF1:
    def test_perfect_binary(self):
        assert f1_score([0, 1, 1, 0], [0, 1, 1, 0]) == 1.0

    def test_known_value(self):
        # precision = 1/2, recall = 1/2 → F1 = 1/2
        assert f1_score([0, 1, 1], [1, 1, 0]) == pytest.approx(0.5)

    def test_zero_when_no_overlap(self):
        assert f1_score([1, 1], [0, 0]) == 0.0

    def test_auto_macro_for_multiclass(self):
        y = [0, 1, 2, 0, 1, 2]
        assert f1_score(y, y) == 1.0

    def test_macro_averages_per_class(self):
        y_true = [0, 0, 1, 1]
        y_pred = [0, 0, 0, 0]  # class 0: p=0.5, r=1 → 2/3; class 1: 0
        assert f1_score(y_true, y_pred, average="macro") == pytest.approx(1.0 / 3.0)

    def test_invalid_average_raises(self):
        with pytest.raises(ValueError, match="average"):
            f1_score([0, 1], [0, 1], average="weird")


class TestConfusion:
    def test_counts(self):
        m = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        assert m.tolist() == [[1, 1], [0, 2]]

    def test_explicit_n_classes(self):
        m = confusion_matrix([0, 0], [0, 0], n_classes=3)
        assert m.shape == (3, 3)


class TestMae:
    def test_known(self):
        assert mean_absolute_error([1.0, 2.0], [2.0, 4.0]) == 1.5

    def test_zero(self):
        assert mean_absolute_error([1.0], [1.0]) == 0.0


@given(
    st.lists(st.integers(0, 1), min_size=1, max_size=60),
    st.lists(st.integers(0, 1), min_size=1, max_size=60),
)
def test_f1_bounded(a, b):
    n = min(len(a), len(b))
    score = f1_score(np.array(a[:n]), np.array(b[:n]))
    assert 0.0 <= score <= 1.0


@given(st.lists(st.integers(0, 3), min_size=1, max_size=60))
def test_f1_of_identical_vectors_is_one(y):
    assert f1_score(np.array(y), np.array(y)) == 1.0


@given(st.lists(st.integers(0, 2), min_size=2, max_size=60))
def test_confusion_matrix_total_equals_n(y):
    y = np.array(y)
    pred = np.roll(y, 1)
    assert confusion_matrix(y, pred).sum() == len(y)
