"""Unit tests for preprocessing, model selection, trees, and the pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.frame import Column, DataFrame
from repro.ml import (
    KFold,
    OneHotEncoder,
    RandomSearch,
    StandardScaler,
    TabularModel,
    TabularPreprocessor,
    make_classifier,
    train_test_split,
)
from repro.ml.tree import DecisionTreeRegressor


class TestStandardScaler:
    def test_zero_mean_unit_std(self):
        X = np.random.default_rng(0).normal(3.0, 2.0, size=(200, 3))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_stays_zero(self):
        X = np.ones((10, 1))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z, 0.0)

    def test_column_count_checked(self):
        scaler = StandardScaler().fit(np.ones((5, 2)))
        with pytest.raises(ValueError):
            scaler.transform(np.ones((5, 3)))


class TestOneHotEncoder:
    def test_basic_encoding(self):
        enc = OneHotEncoder().fit([np.array(["a", "b", "a"], dtype=object)])
        out = enc.transform([np.array(["b", "a"], dtype=object)])
        assert out.tolist() == [[0.0, 1.0], [1.0, 0.0]]

    def test_unseen_category_encodes_to_zeros(self):
        enc = OneHotEncoder().fit([np.array(["a", "b"], dtype=object)])
        out = enc.transform([np.array(["z"], dtype=object)])
        assert out.tolist() == [[0.0, 0.0]]

    def test_n_output_features(self):
        enc = OneHotEncoder().fit(
            [np.array(["a", "b"], dtype=object), np.array(["x", "y", "z"], dtype=object)]
        )
        assert enc.n_output_features() == 5

    def test_column_count_checked(self):
        enc = OneHotEncoder().fit([np.array(["a"], dtype=object)])
        with pytest.raises(ValueError):
            enc.transform([np.array(["a"], dtype=object)] * 2)


class TestTabularPreprocessor:
    @pytest.fixture
    def frame(self):
        return DataFrame(
            {
                "num": [1.0, 2.0, np.nan, 4.0],
                "cat": np.array(["a", "b", None, "b"], dtype=object),
            }
        )

    def test_output_width(self, frame):
        prep = TabularPreprocessor(["num", "cat"]).fit(frame)
        X = prep.transform(frame)
        # 1 numeric + one-hot of {a, b, <missing>}
        assert X.shape == (4, 4)
        assert prep.n_output_features() == 4

    def test_missing_numeric_imputed_with_train_mean(self, frame):
        prep = TabularPreprocessor(["num"]).fit(frame)
        X = prep.transform(frame)
        # mean of present values (1,2,4) = 7/3; imputed cell scales to where
        # the mean sits → exactly 0 after standardization
        assert X[2, 0] == pytest.approx(0.0)

    def test_missing_category_gets_own_column(self, frame):
        prep = TabularPreprocessor(["cat"]).fit(frame)
        X = prep.transform(frame)
        assert X[2].sum() == 1.0  # the <missing> indicator fires

    def test_no_features_raises(self):
        with pytest.raises(ValueError):
            TabularPreprocessor([])

    def test_all_finite_output(self, frame):
        X = TabularPreprocessor(["num", "cat"]).fit_transform(frame)
        assert np.isfinite(X).all()

    def test_infinite_cell_clamped(self):
        frame = DataFrame({"num": [1.0, np.inf, 3.0]})
        X = TabularPreprocessor(["num"]).fit_transform(frame)
        assert np.isfinite(X).all()


class TestTrainTestSplit:
    def test_disjoint_and_complete(self):
        train, test = train_test_split(100, test_size=0.3, rng=0)
        assert len(set(train) & set(test)) == 0
        assert len(train) + len(test) == 100

    def test_stratified_keeps_class_shares(self):
        y = np.array([0] * 90 + [1] * 10)
        train, test = train_test_split(100, test_size=0.2, rng=0, stratify=y)
        assert (y[test] == 1).sum() == 2

    def test_invalid_test_size_raises(self):
        with pytest.raises(ValueError):
            train_test_split(10, test_size=1.5)

    def test_too_few_rows_raises(self):
        with pytest.raises(ValueError):
            train_test_split(1)

    @given(st.integers(10, 200), st.floats(0.1, 0.5))
    @settings(max_examples=25)
    def test_property_disjoint(self, n, ts):
        train, test = train_test_split(n, test_size=ts, rng=0)
        assert set(train).isdisjoint(test)
        assert len(train) + len(test) == n


class TestKFold:
    def test_folds_partition_rows(self):
        folds = list(KFold(n_splits=4, rng=0).split(20))
        assert len(folds) == 4
        all_test = np.concatenate([t for _, t in folds])
        assert sorted(all_test.tolist()) == list(range(20))

    def test_too_many_splits_raises(self):
        with pytest.raises(ValueError):
            list(KFold(n_splits=5).split(3))

    def test_min_splits_validated(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)


class TestRandomSearch:
    def test_finds_better_than_worst(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 3))
        y = (X[:, 0] > 0).astype(int)
        search = RandomSearch(
            make_classifier("knn"),
            {"n_neighbors": [1, 5, 199]},
            n_iter=6,
            rng=0,
        )
        search.fit(X, y)
        assert search.best_params_ is not None
        assert search.best_estimator_.is_fitted()
        assert search.best_score_ > 0.5

    def test_invalid_n_iter(self):
        with pytest.raises(ValueError):
            RandomSearch(make_classifier("knn"), {}, n_iter=0)

    def test_callable_distribution(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(80, 2))
        y = (X[:, 0] > 0).astype(int)
        search = RandomSearch(
            make_classifier("svm"),
            {"C": lambda r: float(10 ** r.uniform(-2, 1))},
            n_iter=3,
            rng=0,
        )
        search.fit(X, y)
        assert "C" in search.best_params_


class TestDecisionTree:
    def test_fits_step_function(self):
        X = np.linspace(0, 1, 100)[:, None]
        y = (X[:, 0] > 0.5).astype(float)
        tree = DecisionTreeRegressor(max_depth=2).fit(X, y)
        pred = tree.predict(X)
        assert np.abs(pred - y).max() < 0.01

    def test_depth_zero_is_single_leaf(self):
        X = np.linspace(0, 1, 10)[:, None]
        y = X[:, 0]
        tree = DecisionTreeRegressor(max_depth=0).fit(X, y)
        assert tree.n_leaves == 1
        assert np.allclose(tree.predict(X), y.mean())

    def test_min_samples_leaf_respected(self):
        X = np.arange(10, dtype=float)[:, None]
        y = (X[:, 0] > 8).astype(float)  # split would isolate 1 sample
        tree = DecisionTreeRegressor(max_depth=3, min_samples_leaf=3).fit(X, y)
        # All leaves must hold >= 3 samples: check prediction granularity
        values, counts = np.unique(tree.predict(X), return_counts=True)
        assert counts.min() >= 3

    def test_constant_target_single_leaf(self):
        X = np.random.default_rng(0).normal(size=(30, 2))
        tree = DecisionTreeRegressor(max_depth=4).fit(X, np.ones(30))
        assert tree.n_leaves == 1

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((0, 2)), np.zeros(0))


class TestTabularModel:
    def test_fit_score_end_to_end(self):
        rng = np.random.default_rng(0)
        n = 200
        frame = DataFrame(
            {
                "x": rng.normal(size=n),
                "c": rng.choice(["u", "v"], size=n),
                "y": (rng.normal(size=n) > 0).astype(int),
            }
        )
        # Make the label depend on the features so the model can learn.
        y = ((frame["x"].values > 0) | (frame["c"].values == "u")).astype(int)
        frame.set_column(Column("y", y))
        model = TabularModel(make_classifier("gb"), label="y")
        f1 = model.fit_score(frame.take(range(150)), frame.take(range(150, 200)))
        assert f1 > 0.8

    def test_features_exclude_label(self):
        frame = DataFrame({"x": [1.0, 2.0, 3.0, 4.0], "y": [0, 1, 0, 1]})
        model = TabularModel(make_classifier("knn"), label="y").fit(frame)
        assert model.features_ == ["x"]

    def test_explicit_feature_subset(self):
        frame = DataFrame(
            {"x": [1.0, 2.0, 3.0, 4.0], "z": [0.0, 0.0, 1.0, 1.0], "y": [0, 1, 0, 1]}
        )
        model = TabularModel(make_classifier("knn"), label="y", feature_names=["z"])
        model.fit(frame)
        assert model.features_ == ["z"]


class TestFitSignatureCache:
    """The featurization cache must be a pure memo: identical fitted state
    with it on or off, hits only for unchanged column content."""

    def _frame(self, seed=0):
        rng = np.random.default_rng(seed)
        n = 60
        return DataFrame(
            {
                "a": rng.normal(size=n),
                "b": rng.normal(size=n),
                "c": rng.choice(["u", "v", None], size=n),
            }
        )

    def test_cached_and_uncached_fits_identical(self):
        from repro.ml import clear_fit_cache

        clear_fit_cache()
        frame = self._frame()
        cached = TabularPreprocessor(["a", "b", "c"]).fit(frame)
        uncached = TabularPreprocessor(["a", "b", "c"], cache=False).fit(frame)
        assert cached.numeric_means_ == uncached.numeric_means_
        assert np.array_equal(cached.scaler_.mean_, uncached.scaler_.mean_)
        assert np.array_equal(cached.scaler_.scale_, uncached.scaler_.scale_)
        assert cached.encoder_.categories_ == uncached.encoder_.categories_
        assert np.array_equal(cached.transform(frame), uncached.transform(frame))

    def test_refit_hits_cache_per_column(self):
        from repro.ml import clear_fit_cache, fit_cache_stats

        clear_fit_cache()
        frame = self._frame()
        # All three columns are memoized: with O(1) token signatures the
        # categorical category set participates too.
        TabularPreprocessor(["a", "b", "c"]).fit(frame)
        stats = fit_cache_stats()
        assert stats["hits"] == 0 and stats["misses"] == 3
        assert all(
            value == 0
            for key, value in stats.items()
            if key not in ("hits", "misses")
        )
        TabularPreprocessor(["a", "b", "c"]).fit(frame)
        assert fit_cache_stats()["hits"] == 3

    def test_polluting_one_column_only_refits_that_column(self):
        from repro.ml import clear_fit_cache, fit_cache_stats

        clear_fit_cache()
        frame = self._frame()
        TabularPreprocessor(["a", "b", "c"]).fit(frame)
        polluted = frame.copy()
        polluted["a"].set_missing([0, 1, 2])
        TabularPreprocessor(["a", "b", "c"]).fit(polluted)
        stats = fit_cache_stats()
        # Columns b and c share tokens with the base frame → served from
        # the cache; only the polluted column a is recomputed.
        assert stats["hits"] == 2
        assert stats["misses"] == 4

    def test_per_instance_counters_and_reset(self):
        from repro.ml import clear_fit_cache, fit_cache_stats

        clear_fit_cache()
        frame = self._frame()
        warm = TabularPreprocessor(["a", "b", "c"]).fit(frame)
        second = TabularPreprocessor(["a", "b", "c"])
        second.fit(frame)
        # The instance counters see only this preprocessor's lookups,
        # not the warm-up fit's.
        assert warm.cache_stats_["misses"] == 3
        assert second.cache_stats_["hits"] == 3
        assert all(
            value == 0
            for key, value in second.cache_stats_.items()
            if key != "hits"
        )
        # reset=True reads and zeroes the process-wide counters.
        assert fit_cache_stats(reset=True)["misses"] == 3
        assert all(value == 0 for value in fit_cache_stats().values())

    def test_transform_matrix_memoized_for_unchanged_frames(self):
        from repro.ml import clear_fit_cache

        clear_fit_cache()
        frame = self._frame()
        prep = TabularPreprocessor(["a", "b", "c"]).fit(frame)
        first = prep.transform(frame)
        assert prep.cache_stats_["transform_misses"] == 1
        second = prep.transform(frame)
        assert prep.cache_stats_["transform_hits"] == 1
        assert np.array_equal(first, second)
        # Cached matrices must come back as private writable copies.
        second[0, 0] = 123.0
        assert prep.transform(frame)[0, 0] != 123.0

    def test_transform_memo_misses_after_mutation(self):
        from repro.ml import clear_fit_cache

        clear_fit_cache()
        frame = self._frame()
        prep = TabularPreprocessor(["a", "b", "c"]).fit(frame)
        prep.transform(frame)
        mutated = frame.copy()
        mutated["a"].set_values([0], [99.0])
        out = prep.transform(mutated)
        assert prep.cache_stats_["transform_hits"] == 0
        assert np.array_equal(out, prep._transform_uncached(mutated))

    def test_digest_mode_matches_token_mode_outputs(self):
        from repro.ml import signature_mode

        frame = self._frame()
        token_fit = TabularPreprocessor(["a", "b", "c"]).fit(frame)
        token_X = token_fit.transform(frame)
        with signature_mode("digest"):
            digest_fit = TabularPreprocessor(["a", "b", "c"]).fit(frame)
            digest_X = digest_fit.transform(frame)
            # The digest baseline caches per-column fits (numeric bytes,
            # categorical codes+categories) but never memoizes matrices
            # or blocks.
            assert digest_fit.cache_stats_["misses"] == 3
            assert digest_fit.cache_stats_["transform_misses"] == 0
            assert digest_fit.cache_stats_["block_misses"] == 0
            refit = TabularPreprocessor(["a", "b", "c"]).fit(frame)
            assert refit.cache_stats_["hits"] == 3
        assert token_fit.numeric_means_ == digest_fit.numeric_means_
        assert token_fit.encoder_.categories_ == digest_fit.encoder_.categories_
        assert np.array_equal(token_X, digest_X)

    def test_changed_content_is_a_miss_not_a_stale_hit(self):
        from repro.ml import clear_fit_cache

        clear_fit_cache()
        frame = self._frame()
        first = TabularPreprocessor(["a"]).fit(frame)
        shifted = frame.copy()
        shifted["a"].set_values(np.arange(10), np.full(10, 99.0))
        second = TabularPreprocessor(["a"]).fit(shifted)
        assert first.numeric_means_["a"] != second.numeric_means_["a"]


class TestTabularModelPreprocessorReuse:
    def _frame(self):
        rng = np.random.default_rng(3)
        n = 80
        return DataFrame(
            {
                "x": rng.normal(size=n),
                "c": rng.choice(["u", "v"], size=n),
                "y": rng.integers(0, 2, size=n),
            }
        )

    def test_prefit_preprocessor_is_reused_not_refit(self):
        frame = self._frame()
        prefit = TabularPreprocessor(["x", "c"]).fit(frame)
        model = TabularModel(make_classifier("lor"), label="y", preprocessor=prefit)
        model.fit(frame)
        assert model.preprocessor_ is prefit
        assert model.features_ == ["x", "c"]

    def test_prefit_reuse_scores_like_fresh_fit(self):
        frame = self._frame()
        train, test = frame.take(range(60)), frame.take(range(60, 80))
        prefit = TabularPreprocessor(["x", "c"]).fit(train)
        reused = TabularModel(
            make_classifier("lor"), label="y", preprocessor=prefit
        ).fit_score(train, test)
        fresh = TabularModel(make_classifier("lor"), label="y").fit_score(train, test)
        assert reused == fresh

    def test_unfitted_preprocessor_fit_once_then_kept(self):
        frame = self._frame()
        prep = TabularPreprocessor(["x", "c"])
        model = TabularModel(make_classifier("lor"), label="y", preprocessor=prep)
        model.fit(frame)
        assert model.preprocessor_ is prep
        assert hasattr(prep, "encoder_")
