"""Edge-case tests: SGD updates of the convex learners, degenerate inputs,
and preprocessing corner cases the main suites don't reach."""

import numpy as np
import pytest

from repro.frame import Column, ColumnKind, DataFrame
from repro.ml import (
    LinearRegression,
    LinearRegressionClassifier,
    LinearSVC,
    LogisticRegression,
    TabularPreprocessor,
    f1_score,
)


def _blobs(n=200, d=3, seed=0, sep=2.5):
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, size=n)
    centers = np.array([[-sep / 2] * d, [sep / 2] * d])
    return centers[y] + rng.normal(size=(n, d)), y


class TestSgdSteps:
    """ActiveClean's model updates: one gradient step must reduce the loss
    on the batch it was computed from (for a small enough step)."""

    def test_logistic_sgd_step_reduces_nll(self):
        X, y = _blobs(seed=1)
        model = LogisticRegression(max_iter=3).fit(X, y)

        def nll():
            probs = model.predict_proba(X)
            return -np.mean(np.log(probs[np.arange(len(y)), y] + 1e-12))

        before = nll()
        model.sgd_step(X, y, lr=0.1)
        assert nll() < before

    def test_svm_sgd_step_reduces_hinge(self):
        X, y = _blobs(seed=2)
        model = LinearSVC(max_iter=2).fit(X, y)

        def hinge():
            scores = model.decision_function(X)
            total = 0.0
            for j, cls in enumerate(model.classes_):
                target = np.where(y == cls, 1.0, -1.0)
                total += np.mean(np.maximum(0.0, 1.0 - target * scores[:, j]) ** 2)
            return total

        before = hinge()
        model.sgd_step(X, y, lr=0.05)
        assert hinge() < before

    def test_lir_sgd_step_reduces_squared_loss(self):
        X, y = _blobs(seed=3)
        model = LinearRegressionClassifier(alpha=10.0).fit(X, y)

        def sse():
            scores = model.decision_function(X)
            onehot = np.zeros_like(scores)
            onehot[np.arange(len(y)), y] = 1.0
            return float(np.sum((scores - onehot) ** 2))

        before = sse()
        model.sgd_step(X, y, lr=0.05)
        assert sse() < before

    def test_sgd_step_changes_predictions_eventually(self):
        X, y = _blobs(seed=4)
        model = LogisticRegression().fit(X, y)
        flipped = 1 - y  # adversarial batch
        for __ in range(50):
            model.sgd_step(X, flipped, lr=0.5)
        assert f1_score(flipped, model.predict(X)) > 0.5


class TestLinearRegressionDetails:
    def test_multi_output(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 2))
        Y = np.column_stack([X[:, 0] * 2.0, X[:, 1] - 1.0])
        model = LinearRegression(alpha=1e-6).fit(X, Y)
        pred = model.predict(X)
        assert pred.shape == (100, 2)
        assert np.allclose(pred, Y, atol=1e-6)

    def test_bias_not_penalized(self):
        X = np.zeros((50, 1))
        y = np.full(50, 7.0)
        model = LinearRegression(alpha=100.0).fit(X, y)
        assert model.predict(np.zeros((1, 1)))[0] == pytest.approx(7.0)


class TestDegenerateInputs:
    def test_logistic_single_feature(self):
        X = np.linspace(-1, 1, 60)[:, None]
        y = (X[:, 0] > 0).astype(int)
        model = LogisticRegression().fit(X, y)
        assert f1_score(y, model.predict(X)) > 0.95

    def test_svm_duplicate_rows(self):
        X = np.ones((30, 2))
        X[15:] = -1.0
        y = np.array([0] * 15 + [1] * 15)
        model = LinearSVC().fit(X, y)
        assert (model.predict(X) == y).all()

    def test_classifier_empty_raises(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros((0, 2)), np.zeros(0, dtype=int))


class TestPreprocessingCorners:
    def test_all_missing_numeric_column(self):
        frame = DataFrame(
            {"x": [np.nan, np.nan, np.nan], "y": [1.0, 2.0, 3.0]}
        )
        X = TabularPreprocessor(["x", "y"]).fit_transform(frame)
        assert np.isfinite(X).all()
        assert np.allclose(X[:, 0], 0.0)  # imputed to mean 0, scaled to 0

    def test_all_missing_categorical_column(self):
        frame = DataFrame(
            {
                "c": Column("c", np.array([None, None], dtype=object),
                            kind=ColumnKind.CATEGORICAL),
                "y": Column("y", [1.0, 2.0]),
            }
        )
        X = TabularPreprocessor(["c", "y"]).fit_transform(frame)
        assert np.isfinite(X).all()

    def test_transform_unseen_rows(self):
        train = DataFrame({"c": ["a", "b"], "x": [1.0, 2.0]})
        test = DataFrame({"c": ["z", "a"], "x": [3.0, np.nan]})
        prep = TabularPreprocessor(["c", "x"]).fit(train)
        X = prep.transform(test)
        assert X.shape[0] == 2
        assert np.isfinite(X).all()

    def test_categorical_numbers_as_strings_stay_categorical(self):
        frame = DataFrame(
            {
                "c": Column("c", np.array(["1", "2", "1"], dtype=object),
                            kind=ColumnKind.CATEGORICAL),
                "x": [0.0, 1.0, 2.0],
            }
        )
        prep = TabularPreprocessor(["c", "x"]).fit(frame)
        assert prep.categorical_names_ == ["c"]
        assert prep.n_output_features() == 3  # 2 one-hot + 1 numeric
