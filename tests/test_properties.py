"""Property-based tests on the core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cleaning import (
    Budget,
    ConstantCost,
    CostModel,
    GroundTruthCleaner,
    LinearCost,
    OneShotCost,
    paper_cost_model,
)
from repro.core.trace import CleaningTrace, IterationRecord
from repro.errors import DirtyCells, MissingValues, Polluter, PrePollution, make_error
from repro.frame import DataFrame
from repro.ml.preprocessing import TabularPreprocessor


# --------------------------------------------------------------------- #
# DirtyCells
# --------------------------------------------------------------------- #
@given(
    st.lists(
        st.tuples(st.sampled_from(["add", "remove"]),
                  st.sampled_from(["f", "g"]),
                  st.sampled_from(["missing", "noise"]),
                  st.lists(st.integers(0, 30), max_size=8)),
        max_size=30,
    )
)
def test_dirty_cells_counts_consistent(operations):
    cells = DirtyCells()
    shadow: dict[tuple[str, str], set[int]] = {}
    for op, feature, error, rows in operations:
        key = (feature, error)
        if op == "add":
            cells.add(feature, error, rows)
            shadow.setdefault(key, set()).update(rows)
        else:
            cells.remove(feature, error, rows)
            if key in shadow:
                shadow[key] -= set(rows)
    for (feature, error), expected in shadow.items():
        assert cells.dirty_count(feature, error) == len(expected)
        assert set(cells.rows(feature, error).tolist()) == expected
    assert cells.total() == sum(len(v) for v in shadow.values())
    assert cells.is_clean() == (cells.total() == 0)


# --------------------------------------------------------------------- #
# Budget and cost models
# --------------------------------------------------------------------- #
@given(st.lists(st.floats(0.0, 5.0), max_size=30), st.floats(1.0, 100.0))
def test_budget_never_overspends(charges, total):
    budget = Budget(total)
    for price in charges:
        if budget.can_afford(price):
            budget.charge(price)
    assert budget.spent <= budget.total + 1e-6
    assert budget.remaining == pytest.approx(budget.total - budget.spent)


@given(st.integers(0, 20))
def test_linear_cost_strictly_increasing(steps_done):
    fn = LinearCost(1.0, 1.0)
    assert fn.cost(steps_done + 1) > fn.cost(steps_done)


@given(st.integers(1, 20))
def test_one_shot_cost_only_first(steps_done):
    fn = OneShotCost(2.0, 0.0)
    assert fn.cost(steps_done) == 0.0
    assert fn.cost(0) == 2.0


@given(
    st.lists(
        st.tuples(st.sampled_from(["a", "b"]), st.sampled_from(["missing", "noise", "scaling"])),
        max_size=20,
    )
)
def test_cost_model_total_matches_sum_of_recorded(steps):
    model = paper_cost_model()
    total = 0.0
    for feature, error in steps:
        expected = model.next_cost(feature, error)
        paid = model.record_step(feature, error)
        assert paid == expected
        total += paid
    # Replaying against a fresh model gives the same total.
    fresh = paper_cost_model()
    replay = sum(fresh.record_step(f, e) for f, e in steps)
    assert replay == pytest.approx(total)


# --------------------------------------------------------------------- #
# CleaningTrace
# --------------------------------------------------------------------- #
@given(
    st.lists(st.tuples(st.floats(0.1, 5.0), st.floats(0.0, 1.0)), min_size=0, max_size=15),
    st.floats(0.0, 1.0),
)
def test_trace_f1_at_is_piecewise_from_recorded_values(spends, initial):
    trace = CleaningTrace(initial_f1=initial)
    cumulative = 0.0
    for i, (cost, f1) in enumerate(spends, start=1):
        cumulative += cost
        trace.append(
            IterationRecord(
                iteration=i, feature="f", error="missing", cost=cost,
                budget_spent=cumulative, f1_before=initial, f1_after=f1,
            )
        )
    grid = np.linspace(0.0, cumulative + 1.0, 13)
    values = trace.f1_at(grid)
    allowed = {initial} | {f1 for __, f1 in spends}
    assert all(any(v == pytest.approx(a) for a in allowed) for v in values)
    # The value at the final spend equals the last record's F1.
    if spends:
        assert trace.f1_at([cumulative])[0] == pytest.approx(spends[-1][1])


# --------------------------------------------------------------------- #
# Polluter / Cleaner round trips
# --------------------------------------------------------------------- #
def _dataset(seed):
    rng = np.random.default_rng(seed)
    def make(n, s):
        r = np.random.default_rng(s)
        return DataFrame({
            "a": r.normal(size=n),
            "b": r.choice(["x", "y", "z"], size=n),
            "label": r.integers(0, 2, size=n),
        })
    pre = PrePollution([MissingValues()], rng=seed)
    return pre.apply(make(80, seed + 1), make(40, seed + 2), label="label",
                     levels={"a": 0.1, "b": 0.1})


@given(st.integers(0, 1000))
@settings(max_examples=15, deadline=None)
def test_clean_then_revert_is_identity(seed):
    dataset = _dataset(seed)
    cleaner = GroundTruthCleaner(step=0.05, rng=seed)
    train_before = dataset.train.copy()
    test_before = dataset.test.copy()
    dirt_before = dataset.dirty_train.total() + dataset.dirty_test.total()
    action = cleaner.clean_step(dataset, "a", "missing")
    cleaner.revert(dataset, action)
    assert dataset.train == train_before
    assert dataset.test == test_before
    assert dataset.dirty_train.total() + dataset.dirty_test.total() == dirt_before


@given(st.integers(0, 1000))
@settings(max_examples=15, deadline=None)
def test_revert_then_apply_equals_clean(seed):
    dataset = _dataset(seed)
    cleaner = GroundTruthCleaner(step=0.05, rng=seed)
    action = cleaner.clean_step(dataset, "a", "missing")
    after = dataset.train["a"].copy()
    cleaner.revert(dataset, action)
    cleaner.apply(dataset, action)
    assert dataset.train["a"] == after


@given(st.integers(0, 1000), st.sampled_from(["missing", "noise", "scaling"]))
@settings(max_examples=15, deadline=None)
def test_pollution_then_preprocessing_stays_finite(seed, error_name):
    dataset = _dataset(seed)
    polluter = Polluter(make_error(error_name), step=0.2, rng=seed)
    polluted, __ = polluter.pollute_once(dataset.train, "a")
    X = TabularPreprocessor(["a", "b"]).fit(polluted).transform(polluted)
    assert np.isfinite(X).all()


# --------------------------------------------------------------------- #
# Budget / CostModel invariants (execution-engine PR hardening)
# --------------------------------------------------------------------- #
@given(
    st.lists(st.floats(-2.0, 10.0, allow_nan=False), max_size=40),
    st.floats(0.5, 60.0),
)
def test_charge_consistent_with_can_afford(charges, total):
    """``charge`` succeeds exactly when ``can_afford`` says so; failed or
    negative charges leave the spend untouched."""
    budget = Budget(total)
    for price in charges:
        spent_before = budget.spent
        if price < 0:
            with pytest.raises(ValueError):
                budget.charge(price)
            assert budget.spent == spent_before
        elif budget.can_afford(price):
            budget.charge(price)
            assert budget.spent == pytest.approx(spent_before + price)
        else:
            with pytest.raises(ValueError):
                budget.charge(price)
            assert budget.spent == spent_before
        assert 0.0 <= budget.spent <= budget.total + 1e-6
        assert budget.exhausted() == (budget.remaining <= 1e-9)


_cost_functions = st.one_of(
    st.builds(ConstantCost, st.floats(0.1, 5.0)),
    st.builds(OneShotCost, st.floats(0.1, 5.0), st.floats(0.0, 5.0)),
    st.builds(LinearCost, st.floats(0.1, 5.0), st.floats(0.0, 5.0)),
)


@given(_cost_functions, st.integers(0, 60))
def test_cost_functions_never_negative(fn, steps_done):
    assert fn.cost(steps_done) >= 0.0


@given(
    _cost_functions,
    st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]), st.sampled_from(["missing", "noise"])),
        max_size=25,
    ),
)
def test_cost_model_next_cost_is_pure_and_non_negative(fn, steps):
    """``next_cost`` never mutates history, never goes negative, and always
    equals what ``record_step`` then charges."""
    model = CostModel(default=fn)
    for feature, error in steps:
        done_before = model.steps_done(feature, error)
        quoted = model.next_cost(feature, error)
        assert quoted >= 0.0
        assert model.next_cost(feature, error) == quoted  # quoting is pure
        assert model.steps_done(feature, error) == done_before
        assert model.record_step(feature, error) == quoted
        assert model.steps_done(feature, error) == done_before + 1
