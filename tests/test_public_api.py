"""The public API surface: everything advertised in ``__all__`` exists,
imports cleanly, and the README quickstart snippet runs."""

import importlib

import pytest

import repro


PACKAGES = [
    "repro",
    "repro.cache",
    "repro.frame",
    "repro.ml",
    "repro.bayes",
    "repro.explain",
    "repro.errors",
    "repro.cleaning",
    "repro.detect",
    "repro.core",
    "repro.baselines",
    "repro.datasets",
    "repro.experiments",
    "repro.runtime",
    "repro.session",
    "repro.service",
]


class TestApiSurface:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_all_exports_resolve(self, name):
        module = importlib.import_module(name)
        assert hasattr(module, "__all__"), f"{name} must declare __all__"
        for symbol in module.__all__:
            assert hasattr(module, symbol), f"{name}.{symbol} missing"

    @pytest.mark.parametrize("name", PACKAGES)
    def test_module_docstrings(self, name):
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} needs a module docstring"

    def test_version(self):
        assert repro.__version__ == "1.0.0"


class TestReadmeQuickstart:
    def test_quickstart_snippet(self):
        """The exact flow from README.md (scaled down for test speed)."""
        from repro import Comet, CometConfig, load_dataset, pollute

        dataset = load_dataset("cmc", n_rows=150)
        polluted = pollute(dataset, error_types=["missing"], rng=7)
        comet = Comet(
            polluted, algorithm="svm", error_types=["missing"],
            budget=2.0, config=CometConfig(step=0.04), rng=0,
        )
        trace = comet.run()
        assert 0.0 <= trace.initial_f1 <= 1.0
        assert 0.0 <= trace.final_f1 <= 1.0
        for record in trace.records:
            assert record.feature in polluted.feature_names
