"""Tier-1 guard for the repository's test layout.

``pytest -x -q`` at the repo root collects both ``tests/`` and
``benchmarks/`` with neither being a package, so two modules sharing a
basename shadow each other in ``sys.modules`` and collection fails with
a confusing import error. This guard turns that foot-gun into a direct,
named failure the moment a duplicate basename lands.
"""

from collections import Counter
from pathlib import Path

_REPO = Path(__file__).resolve().parents[1]


def _module_basenames():
    names = []
    for directory in (_REPO / "tests", _REPO / "benchmarks"):
        names.extend(
            path.stem for path in sorted(directory.glob("*.py"))
            if path.stem != "conftest"  # per-directory conftests may repeat
        )
    return names


def test_python_module_basenames_are_unique_across_suites():
    duplicates = {
        name: count
        for name, count in Counter(_module_basenames()).items()
        if count > 1
    }
    assert not duplicates, (
        f"duplicate module basenames across tests/ and benchmarks/: "
        f"{sorted(duplicates)} — rename one copy; rootdir pytest runs "
        "import both directories into one flat namespace"
    )


def test_guard_sees_both_suites():
    # The guard is only meaningful while both directories are populated.
    names = _module_basenames()
    assert any(name == "test_service" for name in names)
    assert any(name.startswith("test_fig") for name in names)
