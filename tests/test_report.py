"""Tests for the markdown session report."""

import pytest

from repro.core import CleaningTrace, IterationRecord, session_report


def _trace():
    trace = CleaningTrace(initial_f1=0.50)
    trace.append(IterationRecord(
        iteration=1, feature="income", error="missing", cost=2.0,
        budget_spent=2.0, f1_before=0.50, f1_after=0.55, predicted_f1=0.56,
    ))
    trace.append(IterationRecord(
        iteration=2, feature="age", error="noise", cost=1.0,
        budget_spent=3.0, f1_before=0.55, f1_after=0.57, predicted_f1=0.58,
        used_fallback=True, rejected=[("income", "missing")],
    ))
    trace.append(IterationRecord(
        iteration=3, feature="income", error="missing", cost=0.0,
        budget_spent=3.0, f1_before=0.57, f1_after=0.60, from_buffer=True,
    ))
    return trace


class TestSessionReport:
    def test_contains_summary_numbers(self):
        text = session_report(_trace())
        assert "0.5000 → 0.6000" in text
        assert "budget spent: 3" in text
        assert "fallbacks: 1" in text
        assert "buffer replays: 1" in text
        assert "reverted attempts: 1" in text

    def test_iteration_rows_present(self):
        text = session_report(_trace())
        assert "| 1 | income | missing | 2 |" in text
        assert "reverted: income/missing" in text

    def test_allocation_sorted_by_cost(self):
        text = session_report(_trace())
        assert "by feature: income=2, age=1" in text
        assert "by error type: missing=2, noise=1" in text

    def test_prediction_mae(self):
        text = session_report(_trace())
        assert "prediction MAE: 0.0100" in text  # (|0.01| + |0.01|) / 2

    def test_empty_trace(self):
        text = session_report(CleaningTrace(initial_f1=0.7), title="Empty")
        assert text.startswith("# Empty")
        assert "cleaning steps kept: 0" in text
        assert "## Iterations" not in text

    def test_custom_title(self):
        assert session_report(_trace(), title="My run").startswith("# My run")
