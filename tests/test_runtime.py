"""Tests for the execution-engine layer (``repro.runtime``).

Covers the backend registry (selection by name, serial auto-fallback),
ordered ``map`` semantics and lifecycle of every backend, picklable
fit-score tasks, and the headline determinism guarantee: a COMET session
produces a bit-identical :class:`CleaningTrace` on every backend.
"""

import pickle

import numpy as np
import pytest

from repro.core import Comet, CometConfig, CometEstimator
from repro.datasets import load_dataset, pollute
from repro.errors import MissingValues
from repro.frame import DataFrame
from repro.ml import TabularModel, make_classifier
from repro.runtime import (
    ExecutionBackend,
    FitScoreTask,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    make_backend,
    register_backend,
    run_fit_score_task,
)


def _square(x):
    return x * x


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert {"serial", "thread", "process"} <= set(available_backends())

    def test_make_backend_by_name(self):
        backend = make_backend("thread", jobs=4)
        assert isinstance(backend, ThreadBackend)
        assert backend.workers == 4

    def test_single_worker_falls_back_to_serial(self):
        for name in ("serial", "thread", "process"):
            assert isinstance(make_backend(name, jobs=1), SerialBackend)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("gpu", jobs=2)

    def test_instance_passthrough(self):
        backend = ThreadBackend(2)
        assert make_backend(backend, jobs=8) is backend

    def test_custom_registration(self):
        register_backend("custom-serial", lambda jobs: SerialBackend())
        assert "custom-serial" in available_backends()
        assert isinstance(make_backend("custom-serial", jobs=3), SerialBackend)

    def test_invalid_worker_count_raises(self):
        with pytest.raises(ValueError):
            ThreadBackend(0)


class TestBackendMap:
    @pytest.mark.parametrize(
        "backend_factory",
        [SerialBackend, lambda: ThreadBackend(3), lambda: ProcessBackend(2)],
        ids=["serial", "thread", "process"],
    )
    def test_map_preserves_task_order(self, backend_factory):
        with backend_factory() as backend:
            assert backend.map(_square, range(25)) == [x * x for x in range(25)]

    def test_empty_task_list(self):
        with ThreadBackend(2) as backend:
            assert backend.map(_square, []) == []

    def test_pool_restarts_after_shutdown(self):
        backend = ThreadBackend(2)
        assert backend.map(_square, [1, 2]) == [1, 4]
        backend.shutdown()
        assert backend.map(_square, [3]) == [9]
        backend.shutdown()

    def test_context_manager_lifecycle(self):
        backend = ThreadBackend(2)
        with backend as entered:
            assert entered is backend
            assert backend._pool is not None
        assert backend._pool is None

    def test_process_backend_degrades_inline_when_spawning_denied(self, monkeypatch):
        def deny(self):
            raise PermissionError("fork forbidden")

        monkeypatch.setattr(ProcessBackend, "_make_pool", deny)
        backend = ProcessBackend(2)
        with pytest.warns(RuntimeWarning, match="running tasks inline"):
            assert backend.map(_square, [1, 2, 3]) == [1, 4, 9]
        assert backend._pool is None


class TestBackendSubmit:
    """``submit`` is the async primitive the session scheduler builds on."""

    def test_serial_submit_resolves_inline(self):
        backend = SerialBackend()
        future = backend.submit(_square, 6)
        assert future.done() and future.result() == 36

    def test_serial_submit_captures_exceptions(self):
        future = SerialBackend().submit(_square, "nope")
        assert future.done()
        with pytest.raises(TypeError):
            future.result()

    def test_thread_submit_runs_off_thread(self):
        import threading

        caller = threading.get_ident()
        with ThreadBackend(2) as backend:
            future = backend.submit(threading.get_ident)
            assert future.result(timeout=30) != caller

    def test_degraded_process_submit_resolves_inline(self, monkeypatch):
        def deny(self):
            raise PermissionError("fork forbidden")

        monkeypatch.setattr(ProcessBackend, "_make_pool", deny)
        backend = ProcessBackend(2)
        with pytest.warns(RuntimeWarning, match="running tasks inline"):
            future = backend.submit(_square, 5)
        assert future.result() == 25
        # Stickily degraded: the next submit stays inline, no new warning.
        assert backend.submit(_square, 6).result() == 36


class TestFitScoreTask:
    @pytest.fixture
    def frames(self):
        rng = np.random.default_rng(0)
        n = 80
        frame = DataFrame(
            {
                "x": rng.normal(size=n),
                "y": (rng.normal(size=n) > 0).astype(int),
            }
        )
        return frame.take(range(60)), frame.take(range(60, n))

    def test_run_matches_tabular_model(self, frames):
        train, test = frames
        task = FitScoreTask(make_classifier("lor"), "y", train, test)
        expected = TabularModel(make_classifier("lor"), label="y").fit_score(
            train, test
        )
        assert run_fit_score_task(task) == expected

    def test_pickle_roundtrip(self, frames):
        train, test = frames
        task = FitScoreTask(
            make_classifier("lor"), "y", train, test, tag=("f", "missing", 0.05)
        )
        clone = pickle.loads(pickle.dumps(task))
        assert clone.tag == task.tag
        assert run_fit_score_task(clone) == run_fit_score_task(task)


@pytest.fixture(scope="module")
def polluted():
    dataset = load_dataset("eeg", n_rows=120, rng=0)
    return pollute(dataset, error_types=["missing"], rng=2)


class TestEstimatorDispatch:
    def _estimator(self):
        return CometEstimator(
            make_classifier("lor"),
            label="label",
            config=CometConfig(step=0.05, n_pollution_steps=2, n_combinations=2),
            rng=11,
        )

    def test_estimate_many_matches_sequential_estimates(self, polluted):
        candidates = [(f, MissingValues()) for f in polluted.feature_names[:3]]
        batched = self._estimator().estimate_many(
            polluted.train, polluted.test, candidates, 0.8
        )
        # estimate_many consumes the RNG in candidate order — exactly the
        # draws a loop of estimate() calls on one estimator makes — so the
        # batched sweep must reproduce the sequential sweep bit for bit.
        sequential_estimator = self._estimator()
        sequential = [
            sequential_estimator.estimate(
                polluted.train, polluted.test, feature, error, 0.8
            )
            for feature, error in candidates
        ]
        for b, s in zip(batched, sequential):
            assert b.feature == s.feature
            assert np.array_equal(b.levels, s.levels)
            assert np.array_equal(b.scores, s.scores)
            assert b.predicted_f1 == s.predicted_f1
            assert np.array_equal(b.polluted_rows, s.polluted_rows)

    def test_backends_bit_identical_predictions(self, polluted):
        candidates = [(f, MissingValues()) for f in polluted.feature_names[:3]]

        def run(backend):
            return self._estimator().estimate_many(
                polluted.train, polluted.test, candidates, 0.8, backend=backend
            )

        serial = run(None)
        threaded = run(ThreadBackend(4))
        with ProcessBackend(2) as process_backend:
            processed = run(process_backend)
        for s, t, p in zip(serial, threaded, processed):
            assert s.predicted_f1 == t.predicted_f1 == p.predicted_f1
            assert s.uncertainty == t.uncertainty == p.uncertainty
            assert np.array_equal(s.scores, t.scores)
            assert np.array_equal(s.scores, p.scores)
            assert np.array_equal(s.polluted_rows, p.polluted_rows)


class TestCometDeterminism:
    def _trace(self, polluted, backend, jobs):
        with Comet(
            polluted,
            algorithm="lor",
            error_types=["missing"],
            budget=3.0,
            config=CometConfig(step=0.05),
            rng=123,
            backend=backend,
            jobs=jobs,
        ) as comet:
            return comet.run()

    def test_thread_trace_bit_identical_to_serial(self, polluted):
        serial = self._trace(polluted, "serial", 1)
        threaded = self._trace(polluted, "thread", 4)
        assert serial == threaded

    def test_process_trace_bit_identical_to_serial(self, polluted):
        serial = self._trace(polluted, "serial", 1)
        processed = self._trace(polluted, "process", 2)
        assert serial == processed

    def test_backend_attribute_resolution(self, polluted):
        comet = Comet(polluted, algorithm="lor", backend="thread", jobs=4)
        assert isinstance(comet.backend, ThreadBackend)
        fallback = Comet(polluted, algorithm="lor", backend="thread", jobs=1)
        assert isinstance(fallback.backend, SerialBackend)
