"""Tests for the transport-security layer (``repro.security``).

The acceptance pins of the hardening PR: an unauthenticated peer can
neither execute a verb, shut the server down, nor get a worker to
unpickle a payload — over TCP, HTTP, and the distributed worker link —
while a properly tokened (and TLS-wrapped) deployment produces traces
bit-identical to the in-process path.  Plus the primitives themselves
(HMAC roles, token loading, loopback detection, fail-closed policy),
the per-connection idle timeout, and the CLI's fail-fast exits.
"""

import json
import shutil
import socket
import subprocess
import threading
import time

import pytest

from repro.cli import main
from repro.runtime.distributed import (
    DistributedBackend,
    listen_worker,
    run_worker,
    worker_serve,
)
from repro.runtime.wire import JSONLineConnection, encode_frame
from repro.security import (
    AUTH_TOKEN_ENV,
    ROLE_CLIENT,
    ROLE_COORDINATOR,
    ROLE_WORKER,
    TransportSecurity,
    compute_mac,
    generate_token,
    is_loopback_host,
    load_token,
    new_nonce,
    serve_security_error,
    verify_mac,
    worker_security_error,
)
from repro.service import (
    CometClient,
    CometClientError,
    CometConnectionError,
    CometHTTPServer,
    CometService,
    CometTCPServer,
    SessionQuotas,
)

TOKEN = "test-shared-token-0123456789abcdef"

_PARAMS = {
    "dataset": "cmc",
    "algorithm": "lor",
    "errors": ["missing"],
    "budget": 2,
    "rows": 130,
    "step": 0.05,
    "seed": 0,
}


# ---------------------------------------------------------------------- #
# primitives
# ---------------------------------------------------------------------- #
class TestPrimitives:
    def test_mac_roundtrip(self):
        nonce = new_nonce()
        mac = compute_mac(TOKEN, ROLE_CLIENT, nonce)
        assert verify_mac(TOKEN, ROLE_CLIENT, nonce, mac)

    def test_roles_are_not_interchangeable(self):
        # A transcript captured from one direction must not replay as
        # the other direction's proof.
        nonce = new_nonce()
        worker_proof = compute_mac(TOKEN, ROLE_WORKER, nonce)
        assert not verify_mac(TOKEN, ROLE_COORDINATOR, nonce, worker_proof)
        assert not verify_mac(TOKEN, ROLE_CLIENT, nonce, worker_proof)

    def test_verify_rejects_junk(self):
        nonce = new_nonce()
        for junk in (None, "", 42, ["x"], {"mac": "y"}):
            assert not verify_mac(TOKEN, ROLE_CLIENT, nonce, junk)

    def test_wrong_token_fails(self):
        nonce = new_nonce()
        mac = compute_mac(TOKEN, ROLE_CLIENT, nonce)
        assert not verify_mac("other-token", ROLE_CLIENT, nonce, mac)

    def test_generate_token_is_fresh_and_long(self):
        a, b = generate_token(), generate_token()
        assert a != b and len(a) >= 64

    def test_nonces_are_single_use_material(self):
        assert new_nonce() != new_nonce()


class TestLoadToken:
    def test_explicit_wins(self, tmp_path, monkeypatch):
        path = tmp_path / "tok"
        path.write_text("from-file\n")
        monkeypatch.setenv(AUTH_TOKEN_ENV, "from-env")
        assert load_token("explicit", path) == "explicit"

    def test_file_beats_env(self, tmp_path, monkeypatch):
        path = tmp_path / "tok"
        path.write_text("  from-file  \nsecond line ignored\n")
        monkeypatch.setenv(AUTH_TOKEN_ENV, "from-env")
        assert load_token(None, path) == "from-file"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(AUTH_TOKEN_ENV, "from-env")
        assert load_token() == "from-env"

    def test_none_when_unconfigured(self, monkeypatch):
        monkeypatch.delenv(AUTH_TOKEN_ENV, raising=False)
        assert load_token() is None

    def test_empty_sources_are_errors(self, tmp_path, monkeypatch):
        empty = tmp_path / "empty"
        empty.write_text("   \n")
        with pytest.raises(ValueError):
            load_token(None, empty)
        with pytest.raises(ValueError):
            load_token("   ")
        monkeypatch.setenv(AUTH_TOKEN_ENV, "  ")
        with pytest.raises(ValueError):
            load_token()


class TestFailClosedPolicy:
    def test_loopback_hosts(self):
        for host in ("127.0.0.1", "127.1.2.3", "localhost", "::1"):
            assert is_loopback_host(host)
        for host in ("0.0.0.0", "::", "", "10.0.0.5", "example.org"):
            assert not is_loopback_host(host)

    def test_serve_refuses_remote_without_token(self):
        message = serve_security_error("0.0.0.0", token=None, tls=False)
        assert "--auth-token" in message and "--insecure" in message

    def test_serve_refuses_cleartext_http_bearer(self):
        message = serve_security_error(
            "0.0.0.0", token=TOKEN, tls=False, http=True
        )
        assert "--tls-cert" in message

    def test_serve_allows_loopback_insecure_and_secured(self):
        assert serve_security_error("127.0.0.1", token=None, tls=False) is None
        assert (
            serve_security_error("0.0.0.0", token=None, tls=False, insecure=True)
            is None
        )
        assert serve_security_error("0.0.0.0", token=TOKEN, tls=False) is None
        assert (
            serve_security_error("0.0.0.0", token=TOKEN, tls=True, http=True)
            is None
        )

    def test_worker_refuses_remote_without_token(self):
        message = worker_security_error("0.0.0.0", token=None)
        assert "--auth-token" in message and "unpickle" in message
        assert worker_security_error("127.0.0.1", token=None) is None
        assert worker_security_error("0.0.0.0", token=TOKEN) is None

    def test_bearer_check(self):
        security = TransportSecurity(token=TOKEN)
        assert security.check_bearer(f"Bearer {TOKEN}")
        assert security.check_bearer(f"bearer  {TOKEN} ")
        assert not security.check_bearer(f"Basic {TOKEN}")
        assert not security.check_bearer("Bearer wrong")
        assert not security.check_bearer(None)
        assert not TransportSecurity().check_bearer(f"Bearer {TOKEN}")


# ---------------------------------------------------------------------- #
# TCP auth matrix
# ---------------------------------------------------------------------- #
@pytest.fixture
def service():
    with CometService(backend="thread", jobs=2, workers=2) as service:
        yield service


@pytest.fixture
def secured_tcp(service):
    server = CometTCPServer(service, security=TransportSecurity(token=TOKEN))
    server.serve_background()
    yield server
    server.shutdown()
    server.server_close()


def _raw_call(port, *payloads: dict) -> list[dict]:
    """One connection, n request frames, n parsed responses."""
    responses = []
    with socket.create_connection(("127.0.0.1", port), timeout=30) as sock:
        reader = sock.makefile("rb")
        for payload in payloads:
            sock.sendall(encode_frame(payload))
            line = reader.readline()
            if not line:
                responses.append(None)  # server closed on us
                break
            responses.append(json.loads(line))
    return responses


class TestTCPAuthMatrix:
    def test_tokened_client_runs_verbs(self, secured_tcp):
        with CometClient(secured_tcp.port, auth_token=TOKEN, timeout=120) as c:
            assert c.create("s", _PARAMS)["open_candidates"] > 0
            assert c.status()["sessions"] == ["s"]
            assert c.close_session("s") == {"closed": "s"}

    def test_missing_token_gets_structured_unauthorized(self, secured_tcp):
        (response,) = _raw_call(secured_tcp.port, {"action": "status"})
        assert response["ok"] is False
        assert response["error"]["code"] == "unauthorized"
        assert "auth" in response["error"]["message"]

    def test_wrong_token_raises_unauthorized(self, secured_tcp):
        with pytest.raises(CometClientError) as info:
            CometClient(secured_tcp.port, auth_token="wrong-token")
        assert info.value.code == "unauthorized"
        assert not isinstance(info.value, CometConnectionError)

    def test_wrong_mac_closes_connection(self, secured_tcp):
        challenge, rejection, after = _raw_call(
            secured_tcp.port,
            {"action": "auth"},
            {"action": "auth", "mac": "f" * 64},
            {"action": "status"},
        )
        assert challenge["ok"] and challenge["result"]["nonce"]
        assert rejection["error"]["code"] == "unauthorized"
        assert after is None  # a failed proof costs the peer its connection

    def test_empty_token_never_authenticates(self, secured_tcp):
        nonce_resp, rejection = _raw_call(
            secured_tcp.port,
            {"action": "auth"},
            {"action": "auth", "mac": ""},
        )
        nonce = nonce_resp["result"]["nonce"]
        assert rejection["error"]["code"] == "unauthorized"
        # A MAC computed from an empty token is junk too.
        _, rejected = _raw_call(
            secured_tcp.port,
            {"action": "auth"},
            {"action": "auth", "mac": compute_mac("", ROLE_CLIENT, nonce)},
        )
        assert rejected["error"]["code"] == "unauthorized"

    def test_proof_without_challenge_is_rejected(self, secured_tcp):
        nonce = new_nonce()  # self-chosen: the server never issued it
        (response,) = _raw_call(
            secured_tcp.port,
            {"action": "auth", "mac": compute_mac(TOKEN, ROLE_CLIENT, nonce)},
        )
        assert response["error"]["code"] == "unauthorized"

    def test_auth_failure_is_not_retried(self, secured_tcp):
        # The connect-retry loop backs off between attempts; a terminal
        # auth rejection must surface immediately, not after retries
        # worth of sleeping and reconnecting.
        started = time.monotonic()
        with pytest.raises(CometClientError):
            CometClient(
                secured_tcp.port, auth_token="wrong", retries=3, backoff=5.0
            )
        assert time.monotonic() - started < 5.0

    def test_unauthorized_requests_consume_no_quota(self):
        quotas = SessionQuotas(max_sessions=1)
        with CometService(backend="thread", jobs=1, quotas=quotas) as service:
            server = CometTCPServer(
                service, security=TransportSecurity(token=TOKEN)
            )
            server.serve_background()
            try:
                for _ in range(3):
                    (response,) = _raw_call(
                        server.port,
                        {"action": "create", "name": "x", "params": _PARAMS},
                    )
                    assert response["error"]["code"] == "unauthorized"
                # The whole max_sessions=1 allowance is still available.
                with CometClient(server.port, auth_token=TOKEN, timeout=120) as c:
                    assert c.create("s", _PARAMS)["open_candidates"] > 0
            finally:
                server.shutdown()
                server.server_close()

    def test_token_against_open_server_is_harmless(self, service):
        server = CometTCPServer(service)
        server.serve_background()
        try:
            with CometClient(server.port, auth_token=TOKEN, timeout=120) as c:
                assert "sessions" in c.status()
        finally:
            server.shutdown()
            server.server_close()


# ---------------------------------------------------------------------- #
# HTTP auth matrix
# ---------------------------------------------------------------------- #
@pytest.fixture
def secured_http(service):
    server = CometHTTPServer(service, security=TransportSecurity(token=TOKEN))
    server.serve_background()
    yield server
    server.shutdown()
    server.server_close()


def _http(port, method, path, *, token=None, body=None):
    import http.client

    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        headers = {}
        if token is not None:
            headers["Authorization"] = f"Bearer {token}"
        payload = json.dumps(body).encode() if body is not None else None
        if payload is not None:
            headers["Content-Type"] = "application/json"
        conn.request(method, path, body=payload, headers=headers)
        response = conn.getresponse()
        return response.status, json.loads(response.read() or b"{}")
    finally:
        conn.close()


class TestHTTPAuthMatrix:
    def test_bearer_token_passes(self, secured_http):
        status, payload = _http(secured_http.port, "GET", "/status", token=TOKEN)
        assert status == 200 and payload["ok"]

    @pytest.mark.parametrize("token", [None, "wrong", ""])
    def test_bad_bearer_is_401(self, secured_http, token):
        status, payload = _http(secured_http.port, "GET", "/status", token=token)
        assert status == 401
        assert payload["error"]["code"] == "unauthorized"

    def test_post_without_token_is_401_and_undispatched(self, secured_http):
        status, payload = _http(
            secured_http.port,
            "POST",
            "/create",
            body={"name": "x", "params": _PARAMS},
        )
        assert status == 401
        assert payload["error"]["code"] == "unauthorized"
        # Nothing reached the service: no session exists.
        _, listing = _http(secured_http.port, "GET", "/status", token=TOKEN)
        assert listing["result"]["sessions"] == []

    def test_unauthorized_shutdown_leaves_server_up(self, secured_http):
        status, payload = _http(secured_http.port, "POST", "/shutdown", body={})
        assert status == 401
        assert payload["error"]["code"] == "unauthorized"
        status, _ = _http(secured_http.port, "GET", "/status", token=TOKEN)
        assert status == 200  # still serving


# ---------------------------------------------------------------------- #
# shutdown gating on an UNauthenticated server
# ---------------------------------------------------------------------- #
class TestShutdownGating:
    """Without auth the shutdown verb is loopback-only by default."""

    def test_remote_tcp_shutdown_rejected(self, service, monkeypatch):
        server = CometTCPServer(service)
        server.serve_background()
        try:
            # Simulate a remote peer: the gate consults is_loopback_host
            # on the peer address, so patching it is the remote view.
            monkeypatch.setattr(
                "repro.service.transport.is_loopback_host", lambda host: False
            )
            rejection, after = _raw_call(
                server.port, {"action": "shutdown"}, {"action": "status"}
            )
            assert rejection["ok"] is False
            assert rejection["error"]["code"] == "unauthorized"
            assert "--allow-remote-shutdown" in rejection["error"]["message"]
            assert after["ok"]  # connection survived, server still serving
        finally:
            server.shutdown()
            server.server_close()

    def test_remote_http_shutdown_rejected(self, service, monkeypatch):
        server = CometHTTPServer(service)
        server.serve_background()
        try:
            monkeypatch.setattr(
                "repro.service.transport.is_loopback_host", lambda host: False
            )
            status, payload = _http(server.port, "POST", "/shutdown", body={})
            assert status == 403
            assert payload["error"]["code"] == "unauthorized"
            status, _ = _http(server.port, "GET", "/status")
            assert status == 200  # server stayed up
        finally:
            server.shutdown()
            server.server_close()

    def test_allow_remote_shutdown_opts_in(self, service, monkeypatch):
        server = CometTCPServer(service, allow_remote_shutdown=True)
        server.serve_background()
        try:
            monkeypatch.setattr(
                "repro.service.transport.is_loopback_host", lambda host: False
            )
            (response,) = _raw_call(server.port, {"action": "shutdown"})
            assert response == {"ok": True, "result": {"shutdown": True}}
        finally:
            server.shutdown()
            server.server_close()

    def test_authenticated_remote_shutdown_allowed(self, service, monkeypatch):
        server = CometTCPServer(service, security=TransportSecurity(token=TOKEN))
        server.serve_background()
        try:
            monkeypatch.setattr(
                "repro.service.transport.is_loopback_host", lambda host: False
            )
            with CometClient(server.port, auth_token=TOKEN) as client:
                assert client.shutdown_server() == {"shutdown": True}
        finally:
            server.shutdown()
            server.server_close()


# ---------------------------------------------------------------------- #
# idle timeout
# ---------------------------------------------------------------------- #
class TestIdleTimeout:
    def test_idle_connections_are_reaped_and_live_client_unblocked(
        self, service
    ):
        server = CometTCPServer(service, conn_timeout=0.5)
        server.serve_background()
        idle = []
        try:
            for _ in range(5):
                idle.append(
                    socket.create_connection(("127.0.0.1", server.port), timeout=30)
                )
            # A live client is not blocked behind the 5 silent peers.
            with CometClient(server.port, timeout=30) as client:
                assert "sessions" in client.status()
            # ... and each silent peer's socket is closed by the server
            # once it idles past conn_timeout (EOF on our side).
            deadline = time.monotonic() + 10.0
            for sock in idle:
                sock.settimeout(max(0.1, deadline - time.monotonic()))
                assert sock.recv(1) == b""
        finally:
            for sock in idle:
                sock.close()
            server.shutdown()
            server.server_close()

    def test_active_connection_outlives_the_timeout(self, service):
        server = CometTCPServer(service, conn_timeout=0.5)
        server.serve_background()
        try:
            with CometClient(server.port, timeout=30) as client:
                for _ in range(3):
                    time.sleep(0.3)  # stay under the idle limit each time
                    assert "sessions" in client.status()
        finally:
            server.shutdown()
            server.server_close()


# ---------------------------------------------------------------------- #
# TLS
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def tls_cert(tmp_path_factory):
    """A self-signed cert/key pair for 127.0.0.1 (skip without openssl)."""
    if shutil.which("openssl") is None:
        pytest.skip("openssl CLI not available to generate a test certificate")
    directory = tmp_path_factory.mktemp("tls")
    cert, key = directory / "cert.pem", directory / "key.pem"
    subprocess.run(
        [
            "openssl", "req", "-x509", "-newkey", "rsa:2048",
            "-keyout", str(key), "-out", str(cert),
            "-days", "2", "-nodes", "-subj", "/CN=localhost",
            "-addext", "subjectAltName=IP:127.0.0.1,DNS:localhost",
        ],
        check=True,
        capture_output=True,
    )
    return str(cert), str(key)


class TestTLS:
    def test_full_verb_trace_over_tls_token_matches_in_process(
        self, service, tls_cert
    ):
        cert, key = tls_cert
        # The reference runs the *same* verb sequence in-process, so the
        # comparison pins the transport (TLS + auth), not the verbs.
        with CometService() as isolated:
            isolated.handle({"action": "create", "name": "r", "params": _PARAMS})
            isolated.handle({"action": "recommend", "name": "r", "k": 2})
            isolated.handle({"action": "step", "name": "r"})
            response = isolated.handle({"action": "run", "name": "r"})
            assert response["ok"]
            reference = response["result"]["trace"]

        server = CometTCPServer(
            service,
            security=TransportSecurity(token=TOKEN, certfile=cert, keyfile=key),
        )
        server.serve_background()
        try:
            with CometClient(
                server.port, tls=cert, auth_token=TOKEN, timeout=120
            ) as client:
                assert client.create("t", _PARAMS)["open_candidates"] > 0
                client.recommend("t", k=2)
                client.step("t")
                client.run("t", wait=False)
                outcome = client.result("t")
                assert outcome["ready"] and outcome["finished"]
                assert client.status("t")["finished"]
                assert client.close_session("t") == {"closed": "t"}
        finally:
            server.shutdown()
            server.server_close()
        assert json.dumps(outcome["trace"], sort_keys=True) == json.dumps(
            reference, sort_keys=True
        )

    def test_plaintext_client_is_dropped_by_tls_server(self, service, tls_cert):
        cert, key = tls_cert
        server = CometTCPServer(
            service, security=TransportSecurity(certfile=cert, keyfile=key)
        )
        server.serve_background()
        try:
            with pytest.raises((CometConnectionError, TimeoutError)):
                client = CometClient(server.port, timeout=5)
                client.status()
        finally:
            server.shutdown()
            server.server_close()

    def test_unpinned_client_fails_fast(self, service, tls_cert):
        cert, key = tls_cert
        server = CometTCPServer(
            service, security=TransportSecurity(certfile=cert, keyfile=key)
        )
        server.serve_background()
        started = time.monotonic()
        try:
            with pytest.raises(CometConnectionError) as info:
                # System CA store does not know our self-signed cert.
                CometClient(server.port, tls=True, retries=3, backoff=5.0)
            assert "TLS" in str(info.value)
            assert time.monotonic() - started < 5.0  # handshake not retried
        finally:
            server.shutdown()
            server.server_close()


# ---------------------------------------------------------------------- #
# distributed worker link
# ---------------------------------------------------------------------- #
def _square(x):
    return x * x


def _secured_backend(**kwargs):
    kwargs.setdefault("spawn_workers", 0)
    kwargs.setdefault("heartbeat", 0.2)
    kwargs.setdefault("register_timeout", 60.0)
    kwargs.setdefault("security", TransportSecurity(token=TOKEN))
    return DistributedBackend(2, **kwargs)


def _start_worker_thread(backend, security, worker_id="w"):
    host, port = backend.address

    def _serve():
        try:
            run_worker(
                connect=(host, port),
                worker_id=worker_id,
                retries=1,
                security=security,
            )
        except (ConnectionError, OSError):
            pass

    thread = threading.Thread(target=_serve, daemon=True)
    thread.start()
    return thread


class TestDistributedAuth:
    def test_mutual_handshake_serves_tasks(self):
        backend = _secured_backend()
        backend.start()
        try:
            _start_worker_thread(backend, TransportSecurity(token=TOKEN))
            assert backend.wait_for_workers(1, timeout=30) == 1
            assert backend.map(_square, [1, 2, 3]) == [1, 4, 9]
        finally:
            backend.shutdown()

    def test_tokenless_worker_is_refused(self):
        backend = _secured_backend()
        backend.start()
        try:
            host, port = backend.address
            with socket.create_connection((host, port), timeout=30) as sock:
                conn = JSONLineConnection(sock)
                conn.send(
                    {"op": "hello", "worker": "w", "pid": 0, "protocol": 1}
                )
                goodbye = conn.recv()
            assert goodbye["op"] == "goodbye"
            assert "authentication required" in goodbye["reason"]
            assert backend.wait_for_workers(1, timeout=1) == 0
        finally:
            backend.shutdown()

    def test_wrong_token_worker_never_registers(self):
        backend = _secured_backend()
        backend.start()
        try:
            errors = []

            def _serve():
                host, port = backend.address
                try:
                    run_worker(
                        connect=(host, port),
                        retries=1,
                        security=TransportSecurity(token="not-the-token"),
                    )
                except ConnectionError as exc:
                    errors.append(str(exc))

            thread = threading.Thread(target=_serve, daemon=True)
            thread.start()
            thread.join(timeout=30)
            assert errors and "authentication" in errors[0]
            assert backend.wait_for_workers(1, timeout=1) == 0
        finally:
            backend.shutdown()

    def test_rogue_coordinator_cannot_trigger_unpickle(self, monkeypatch):
        """A worker with a token refuses an unproven coordinator before
        the task loop — its payloads are never unpickled."""
        import repro.runtime.distributed as distributed

        decoded = []
        real = distributed.text_to_pickle
        monkeypatch.setattr(
            distributed,
            "text_to_pickle",
            lambda text: decoded.append(text) or real(text),
        )

        with socket.create_server(("127.0.0.1", 0)) as listener:
            host, port = listener.getsockname()[:2]

            def _rogue():
                sock, _ = listener.accept()
                conn = JSONLineConnection(sock)
                conn.recv()  # the worker's hello (with its challenge)
                # No auth_mac: this coordinator cannot prove possession,
                # but it tries to push a task anyway.
                conn.send({"op": "welcome", "heartbeat": 1.0})
                try:
                    conn.send(
                        {"op": "task", "id": 0, "payload": "bm90IGEgcGlja2xl"}
                    )
                except (OSError, ConnectionError):
                    pass
                conn.close()

            rogue = threading.Thread(target=_rogue, daemon=True)
            rogue.start()
            sock = socket.create_connection((host, port), timeout=30)
            with pytest.raises(ConnectionError, match="failed authentication"):
                worker_serve(
                    JSONLineConnection(sock),
                    security=TransportSecurity(token=TOKEN),
                )
            rogue.join(timeout=10)
        assert decoded == []  # nothing was ever unpickled

    def test_coordinator_must_challenge_back(self):
        """A welcome that answers the worker's nonce but issues no
        counter-challenge is a one-sided handshake — refused."""
        with socket.create_server(("127.0.0.1", 0)) as listener:
            host, port = listener.getsockname()[:2]

            def _half_coordinator():
                sock, _ = listener.accept()
                conn = JSONLineConnection(sock)
                hello = conn.recv()
                conn.send(
                    {
                        "op": "welcome",
                        "heartbeat": 1.0,
                        "auth_mac": compute_mac(
                            TOKEN, ROLE_COORDINATOR, hello["auth_nonce"]
                        ),
                    }
                )
                conn.close()

            threading.Thread(target=_half_coordinator, daemon=True).start()
            sock = socket.create_connection((host, port), timeout=30)
            with pytest.raises(ConnectionError, match="one-sided"):
                worker_serve(
                    JSONLineConnection(sock),
                    security=TransportSecurity(token=TOKEN),
                )

    def test_nonloopback_coordinator_requires_token(self):
        with pytest.raises(ValueError, match="refusing to coordinate"):
            DistributedBackend(2, listen=("0.0.0.0", 0))
        # With a token (or the explicit escape hatch) construction is fine.
        DistributedBackend(
            2, listen=("0.0.0.0", 0), security=TransportSecurity(token=TOKEN)
        )
        DistributedBackend(2, listen=("0.0.0.0", 0), insecure=True)

    def test_nonloopback_listen_worker_requires_token(self):
        with pytest.raises(ValueError, match="--auth-token"):
            listen_worker(listen=("0.0.0.0", 0))

    def test_from_env_picks_up_token(self, monkeypatch):
        monkeypatch.setenv(AUTH_TOKEN_ENV, TOKEN)
        backend = DistributedBackend.from_env(2, spawn_workers=0)
        assert backend.security is not None
        assert backend.security.token == TOKEN

    def test_from_env_without_token_is_open(self, monkeypatch):
        monkeypatch.delenv(AUTH_TOKEN_ENV, raising=False)
        backend = DistributedBackend.from_env(2, spawn_workers=0)
        assert backend.security is None


class TestDistributedSecuredTrace:
    def test_e1_sweep_bit_identical_over_token_tls_link(self, tls_cert):
        """The acceptance pin: a fully secured worker link (mutual token
        auth + TLS) changes nothing about the E1 trace."""
        from repro.core import Comet, CometConfig
        from repro.datasets import load_dataset, pollute

        cert, key = tls_cert
        dataset = load_dataset("eeg", n_rows=120, rng=0)
        polluted = pollute(dataset, error_types=["missing"], rng=2)

        def trace(backend, jobs=1):
            with Comet(
                polluted,
                algorithm="lor",
                error_types=["missing"],
                budget=3.0,
                config=CometConfig(step=0.05),
                rng=123,
                backend=backend,
                jobs=jobs,
            ) as comet:
                return comet.run()

        serial = trace("serial")
        backend = _secured_backend(
            security=TransportSecurity(token=TOKEN, certfile=cert, keyfile=key)
        )
        backend.start()
        worker_security = TransportSecurity(token=TOKEN, cafile=cert)
        try:
            _start_worker_thread(backend, worker_security, "a")
            _start_worker_thread(backend, worker_security, "b")
            assert backend.wait_for_workers(2, timeout=30) == 2
            secured = trace(backend, jobs=2)
        finally:
            backend.shutdown()
        assert serial == secured


# ---------------------------------------------------------------------- #
# CLI fail-closed exits
# ---------------------------------------------------------------------- #
class TestCLIFailClosed:
    def test_serve_refuses_nonloopback_without_token(self, capsys, monkeypatch):
        monkeypatch.delenv(AUTH_TOKEN_ENV, raising=False)
        assert main(["serve", "--host", "0.0.0.0", "--port", "0"]) == 2
        err = capsys.readouterr().err
        assert "--auth-token" in err and "--insecure" in err

    def test_serve_refuses_cleartext_http_bearer(self, capsys):
        code = main(
            [
                "serve", "--host", "0.0.0.0", "--port", "0", "--http",
                "--auth-token", TOKEN,
            ]
        )
        assert code == 2
        assert "--tls-cert" in capsys.readouterr().err

    def test_worker_listen_refuses_nonloopback_without_token(
        self, capsys, monkeypatch
    ):
        monkeypatch.delenv(AUTH_TOKEN_ENV, raising=False)
        assert main(["worker", "--listen", "0.0.0.0:0"]) == 2
        err = capsys.readouterr().err
        assert "--auth-token" in err and "--insecure" in err

    def test_empty_token_file_is_an_error(self, capsys, tmp_path):
        empty = tmp_path / "token"
        empty.write_text("\n")
        code = main(
            ["serve", "--port", "0", "--auth-token-file", str(empty)]
        )
        assert code == 2
        assert "empty" in capsys.readouterr().err

    def test_tls_key_requires_cert(self, capsys, tmp_path):
        key = tmp_path / "key.pem"
        key.write_text("not really a key")
        code = main(["serve", "--port", "0", "--tls-key", str(key)])
        assert code == 2
        assert "--tls-cert" in capsys.readouterr().err
