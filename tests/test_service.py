"""Tests for the multi-session serving façade (``repro.service``).

Covers the programmatic registry, every JSON verb, the JSON-lines stream
loop, and the concurrency contract: sessions served concurrently over
one shared backend yield exactly the traces isolated runs produce.
"""

import io
import json
import threading

import pytest

from repro.core import Comet, CometConfig
from repro.datasets import load_dataset, pollute
from repro.service import CometService, serve_stream


def _polluted(seed=7):
    dataset = load_dataset("cmc", n_rows=130)
    return pollute(dataset, error_types=["missing"], rng=seed)


def _create_kwargs(budget=3.0, rng=0):
    return dict(
        algorithm="lor",
        error_types=["missing"],
        budget=budget,
        config=CometConfig(step=0.05),
        rng=rng,
    )


_PARAMS = {
    "dataset": "cmc",
    "algorithm": "lor",
    "errors": ["missing"],
    "budget": 2,
    "rows": 130,
    "step": 0.05,
    "seed": 0,
}


class TestRegistry:
    def test_create_and_lookup(self):
        with CometService() as service:
            session = service.create_session("a", _polluted(), **_create_kwargs())
            assert service.session("a") is session
            assert service.names() == ["a"]

    def test_duplicate_name_rejected(self):
        with CometService() as service:
            service.create_session("a", _polluted(), **_create_kwargs())
            with pytest.raises(ValueError, match="already exists"):
                service.create_session("a", _polluted(), **_create_kwargs())

    def test_unknown_name_raises(self):
        with CometService() as service:
            with pytest.raises(KeyError):
                service.session("ghost")
            with pytest.raises(KeyError):
                service.close_session("ghost")

    def test_close_session_keeps_backend(self):
        with CometService(backend="thread", jobs=2) as service:
            service.create_session("a", _polluted(), **_create_kwargs())
            service.close_session("a")
            assert service.names() == []
            # The shared backend is still usable for new sessions.
            session = service.create_session("b", _polluted(), **_create_kwargs())
            assert session.backend is service.backend

    def test_sessions_share_one_backend(self):
        with CometService(backend="thread", jobs=2) as service:
            a = service.create_session("a", _polluted(), **_create_kwargs())
            b = service.create_session("b", _polluted(), **_create_kwargs())
            assert a.backend is service.backend
            assert b.backend is service.backend


class TestJsonHandlers:
    def test_create_status_step_run_close(self, tmp_path):
        with CometService() as service:
            created = service.handle(
                {"action": "create", "name": "s", "params": _PARAMS}
            )
            assert created["ok"], created
            assert created["result"]["open_candidates"] > 0

            status = service.handle({"action": "status", "name": "s"})
            assert status["result"]["iteration"] == 0

            stepped = service.handle({"action": "step", "name": "s"})
            assert stepped["ok"]
            assert stepped["result"]["record"]["iteration"] == 1

            ran = service.handle({"action": "run", "name": "s"})
            assert ran["ok"]
            assert ran["result"]["finished"]
            trace = ran["result"]["trace"]
            # The step record stayed part of the session's single trace.
            assert trace["records"][0]["iteration"] == 1
            assert json.dumps(ran) is not None  # fully JSON-serializable

            closed = service.handle({"action": "close", "name": "s"})
            assert closed["ok"] and closed["result"]["closed"] == "s"

    def test_recommend_handler(self):
        with CometService() as service:
            service.handle({"action": "create", "name": "s", "params": _PARAMS})
            response = service.handle({"action": "recommend", "name": "s", "k": 2})
            assert response["ok"]
            for candidate in response["result"]["candidates"]:
                assert set(candidate) == {
                    "feature", "error", "predicted_f1", "uncertainty",
                    "gain", "cost", "score",
                }

    def test_checkpoint_and_reload(self, tmp_path):
        path = tmp_path / "svc.ckpt"
        with CometService() as service:
            service.handle({"action": "create", "name": "s", "params": _PARAMS})
            service.handle({"action": "step", "name": "s"})
            saved = service.handle(
                {"action": "checkpoint", "name": "s", "path": str(path)}
            )
            assert saved["ok"]
            reloaded = service.handle(
                {"action": "create", "name": "s2", "checkpoint": str(path)}
            )
            assert reloaded["ok"]
            assert reloaded["result"]["iteration"] == 1

    def test_status_without_name_lists_sessions(self):
        with CometService(backend="thread", jobs=2) as service:
            service.handle({"action": "create", "name": "s", "params": _PARAMS})
            response = service.handle({"action": "status"})
            assert response["result"]["sessions"] == ["s"]
            assert response["result"]["backend"] == "thread"

    def test_errors_become_structured_responses(self):
        with CometService() as service:
            unknown = service.handle({"action": "warp"})
            assert not unknown["ok"]
            assert unknown["error"]["type"] == "ValueError"
            assert "unknown action" in unknown["error"]["message"]
            ghost = service.handle({"action": "step", "name": "ghost"})
            assert not ghost["ok"] and ghost["error"]["type"] == "KeyError"
            assert not service.handle({"action": "create"})["ok"]
            response = service.handle({"action": "create", "name": "x", "params": {}})
            assert not response["ok"]
            assert "dataset" in response["error"]["message"]


class TestHardening:
    def test_checkpoint_io_disabled(self, tmp_path):
        path = str(tmp_path / "x.ckpt")
        with CometService(checkpoint_io=False) as service:
            service.handle({"action": "create", "name": "s", "params": _PARAMS})
            saved = service.handle(
                {"action": "checkpoint", "name": "s", "path": path}
            )
            assert not saved["ok"] and "disabled" in saved["error"]["message"]
            loaded = service.handle(
                {"action": "create", "name": "s2", "checkpoint": path}
            )
            assert not loaded["ok"] and "disabled" in loaded["error"]["message"]

    def test_shutdown_rejects_new_sessions(self):
        service = CometService()
        service.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            service.create_session("late", _polluted(), **_create_kwargs())


class TestServeStream:
    def test_json_lines_roundtrip(self):
        requests = [
            {"action": "create", "name": "s", "params": _PARAMS},
            {"action": "status", "name": "s"},
            "not json at all",
            {"action": "shutdown"},
        ]
        lines = []
        for request in requests:
            lines.append(
                request if isinstance(request, str) else json.dumps(request)
            )
        out = io.StringIO()
        with CometService() as service:
            handled = serve_stream(service, io.StringIO("\n".join(lines)), out)
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        assert handled == 4
        assert responses[0]["ok"] and responses[1]["ok"]
        assert not responses[2]["ok"]
        assert responses[2]["error"]["code"] == "bad_frame"
        assert "invalid JSON" in responses[2]["error"]["message"]
        assert responses[3]["result"] == {"shutdown": True}


class TestConcurrentSessions:
    """Concurrently served sessions equal isolated runs, trace for trace."""

    def test_concurrent_equal_isolated(self):
        seeds = [(11, 0), (23, 1)]
        isolated = [
            Comet(_polluted(seed=ds), **_create_kwargs(rng=rs)).run()
            for ds, rs in seeds
        ]
        with CometService(backend="thread", jobs=2) as service:
            sessions = [
                service.create_session(
                    f"s{i}", _polluted(seed=ds), **_create_kwargs(rng=rs)
                )
                for i, (ds, rs) in enumerate(seeds)
            ]
            traces = [None] * len(sessions)
            errors = []

            def drive(i):
                try:
                    traces[i] = sessions[i].run()
                except Exception as exc:  # pragma: no cover — surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=drive, args=(i,))
                for i in range(len(sessions))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert not errors
        assert traces[0] == isolated[0]
        assert traces[1] == isolated[1]
