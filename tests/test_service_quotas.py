"""Tests for per-session quotas and the async session scheduler.

The verb layer enforces :class:`~repro.service.SessionQuotas` (max
concurrent sessions per client, max iterations, max wall-clock per
session) and surfaces exhaustion as structured errors on a clean
iteration boundary: ``status`` keeps answering and ``checkpoint`` keeps
producing resumable checkpoints afterwards. Iteration verbs route
through the bounded :class:`~repro.service.SessionScheduler`, which
serializes work per session and supports ``wait: false`` + ``result``.
"""

import threading
import time

import pytest

from repro.service import (
    CometService,
    QuotaExceededError,
    SessionBusyError,
    SessionQuotas,
)
from repro.session import CleaningSession

_PARAMS = {
    "dataset": "cmc",
    "algorithm": "lor",
    "errors": ["missing"],
    "budget": 4,
    "rows": 130,
    "step": 0.05,
    "seed": 0,
}


def _params(seed=0, **overrides):
    return {**_PARAMS, "seed": seed, **overrides}


def _small_polluted(seed=7):
    from repro.datasets import load_dataset, pollute

    return pollute(
        load_dataset("cmc", n_rows=130), error_types=["missing"], rng=seed
    )


class TestQuotaValidation:
    def test_non_positive_limits_rejected(self):
        for field in (
            "max_iterations",
            "max_seconds",
            "max_sessions",
            "max_cache_bytes",
        ):
            with pytest.raises(ValueError, match="positive"):
                SessionQuotas(**{field: 0})

    def test_to_dict_is_json_friendly(self):
        quotas = SessionQuotas(max_iterations=7, max_seconds=1.5)
        assert quotas.to_dict() == {
            "max_iterations": 7,
            "max_seconds": 1.5,
            "max_sessions": None,
            "max_cache_bytes": None,
        }


class TestMaxSessions:
    def test_cap_is_per_client(self):
        quotas = SessionQuotas(max_sessions=1)
        with CometService(quotas=quotas) as service:
            assert service.handle(
                {"action": "create", "name": "a", "params": _params(0)},
                client="alice",
            )["ok"]
            refused = service.handle(
                {"action": "create", "name": "b", "params": _params(1)},
                client="alice",
            )
            assert not refused["ok"]
            error = refused["error"]
            assert error["type"] == "QuotaExceededError"
            assert error["code"] == "quota_exceeded"
            assert error["details"]["quota"] == "max_sessions"
            assert error["details"]["client"] == "alice"
            # A different client still has its own allowance.
            assert service.handle(
                {"action": "create", "name": "c", "params": _params(2)},
                client="bob",
            )["ok"]

    def test_closing_frees_the_slot(self):
        quotas = SessionQuotas(max_sessions=1)
        with CometService(quotas=quotas) as service:
            service.handle({"action": "create", "name": "a", "params": _params()})
            assert not service.handle(
                {"action": "create", "name": "b", "params": _params(1)}
            )["ok"]
            assert service.handle({"action": "close", "name": "a"})["ok"]
            assert service.handle(
                {"action": "create", "name": "b", "params": _params(1)}
            )["ok"]

    def test_racing_creates_cannot_overshoot_the_cap(self, monkeypatch):
        # An in-flight build must already hold a quota slot: with a cap
        # of 1 and a deliberately slow session constructor, the second
        # create is refused *while the first is still building*.
        original = CleaningSession.create

        def slow_create(*args, **kwargs):
            time.sleep(0.4)
            return original(*args, **kwargs)

        monkeypatch.setattr(CleaningSession, "create", slow_create)
        quotas = SessionQuotas(max_sessions=1)
        outcomes = {}
        with CometService(quotas=quotas) as service:
            polluted = _small_polluted()

            def create(name):
                try:
                    service.create_session(
                        name, polluted.copy(), algorithm="lor",
                        error_types=["missing"], budget=1.0, rng=0,
                    )
                    outcomes[name] = "created"
                except QuotaExceededError:
                    outcomes[name] = "refused"

            first = threading.Thread(target=create, args=("a",))
            first.start()
            time.sleep(0.1)  # let "a" reserve and start its slow build
            create("b")
            first.join()
        assert outcomes == {"a": "created", "b": "refused"}

    def test_programmatic_create_enforced_too(self):
        quotas = SessionQuotas(max_sessions=1)
        with CometService(quotas=quotas) as service:
            service.handle({"action": "create", "name": "a", "params": _params()})
            with pytest.raises(QuotaExceededError):
                service.create_session(
                    "b", service.session("a").state.dataset.copy(),
                    algorithm="lor", budget=1.0, rng=0,
                )


class TestIterationQuotas:
    def test_run_stops_on_iteration_quota_then_status_and_checkpoint_work(
        self, tmp_path
    ):
        quotas = SessionQuotas(max_iterations=1)
        with CometService(quotas=quotas) as service:
            service.handle({"action": "create", "name": "s", "params": _params()})
            ran = service.handle({"action": "run", "name": "s"})
            assert not ran["ok"]
            error = ran["error"]
            assert error["code"] == "quota_exceeded"
            assert error["details"] == {
                "quota": "max_iterations", "limit": 1, "used": 1, "name": "s",
            }
            # Exhaustion landed on an iteration boundary: the session is
            # still inspectable and still checkpointable.
            status = service.handle({"action": "status", "name": "s"})
            assert status["ok"]
            assert status["result"]["iteration"] == 1
            assert status["result"]["running"] is False
            path = tmp_path / "quota.ckpt"
            saved = service.handle(
                {"action": "checkpoint", "name": "s", "path": str(path)}
            )
            assert saved["ok"]
            # The checkpoint resumes: one recorded iteration, then more.
            resumed = CleaningSession.load(path)
            assert resumed.state.iteration == 1
            assert resumed.iterate()

    def test_step_honors_iteration_quota(self):
        quotas = SessionQuotas(max_iterations=1)
        with CometService(quotas=quotas) as service:
            service.handle({"action": "create", "name": "s", "params": _params()})
            assert service.handle({"action": "step", "name": "s"})["ok"]
            refused = service.handle({"action": "step", "name": "s"})
            assert not refused["ok"]
            assert refused["error"]["details"]["quota"] == "max_iterations"

    def test_wall_clock_quota_exhausts_mid_run(self):
        quotas = SessionQuotas(max_seconds=1e-9)
        with CometService(quotas=quotas) as service:
            service.handle({"action": "create", "name": "s", "params": _params()})
            # The first sweep is allowed (nothing spent yet), the second
            # finds the allowance burned.
            ran = service.handle({"action": "run", "name": "s"})
            assert not ran["ok"]
            details = ran["error"]["details"]
            assert details["quota"] == "max_seconds"
            assert details["used"] > 0
            status = service.handle({"action": "status", "name": "s"})
            assert status["ok"] and status["result"]["iteration"] == 1
            assert status["result"]["elapsed_seconds"] > 0

    def test_recommend_is_quota_accounted(self):
        # A recommendation pays a full E1 sweep, so it must accrue
        # wall-clock against the session and honor the limits — a
        # recommend loop cannot burn unbounded CPU on a capped server.
        quotas = SessionQuotas(max_seconds=1e-9)
        with CometService(quotas=quotas) as service:
            service.handle({"action": "create", "name": "s", "params": _params()})
            first = service.handle({"action": "recommend", "name": "s", "k": 1})
            assert first["ok"]  # nothing spent yet when it was gated
            status = service.handle({"action": "status", "name": "s"})
            assert status["result"]["elapsed_seconds"] > 0
            second = service.handle({"action": "recommend", "name": "s", "k": 1})
            assert not second["ok"]
            assert second["error"]["details"]["quota"] == "max_seconds"

    def test_async_run_reports_quota_error_via_result(self):
        quotas = SessionQuotas(max_iterations=1)
        with CometService(quotas=quotas) as service:
            service.handle({"action": "create", "name": "s", "params": _params()})
            scheduled = service.handle(
                {"action": "run", "name": "s", "wait": False}
            )
            assert scheduled["ok"] and scheduled["result"]["scheduled"]
            outcome = service.handle({"action": "result", "name": "s"})
            assert not outcome["ok"]
            assert outcome["error"]["code"] == "quota_exceeded"
            # The failure was collected; asking again finds no job.
            again = service.handle({"action": "result", "name": "s"})
            assert not again["ok"] and again["error"]["type"] == "KeyError"


class TestScheduler:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            CometService(workers=0)

    def test_single_worker_still_dispatches_async(self):
        with CometService(workers=1) as service:
            assert service.scheduler.workers == 1
            service.handle({"action": "create", "name": "s", "params": _params()})
            scheduled = service.handle(
                {"action": "step", "name": "s", "wait": False}
            )
            assert scheduled["ok"] and scheduled["result"]["scheduled"]
            outcome = service.handle({"action": "result", "name": "s"})
            assert outcome["ok"] and outcome["result"]["record"]

    def test_recommend_respects_busy_session(self):
        with CometService(workers=2) as service:
            service.handle({"action": "create", "name": "s", "params": _params()})
            service.handle({"action": "run", "name": "s", "wait": False})
            try:
                busy = service.handle({"action": "recommend", "name": "s"})
            finally:
                outcome = service.handle({"action": "result", "name": "s"})
            assert not busy["ok"]
            assert busy["error"]["code"] == "session_busy"
            assert outcome["ok"]

    def test_wait_false_then_result(self):
        with CometService(workers=2) as service:
            service.handle({"action": "create", "name": "s", "params": _params()})
            scheduled = service.handle(
                {"action": "run", "name": "s", "wait": False}
            )
            assert scheduled["ok"]
            assert scheduled["result"] == {"name": "s", "scheduled": True}
            outcome = service.handle({"action": "result", "name": "s"})
            assert outcome["ok"]
            assert outcome["result"]["ready"] and outcome["result"]["finished"]
            assert outcome["result"]["trace"]["records"]

    def test_result_without_job_is_an_error(self):
        with CometService() as service:
            service.handle({"action": "create", "name": "s", "params": _params()})
            response = service.handle({"action": "result", "name": "s"})
            assert not response["ok"]
            assert "no scheduled" in response["error"]["message"]

    def test_concurrent_verbs_on_one_session_report_busy(self):
        with CometService(workers=2) as service:
            service.handle({"action": "create", "name": "s", "params": _params()})
            service.handle({"action": "run", "name": "s", "wait": False})
            try:
                # The run is still in flight when these verbs arrive (a
                # cmc run takes seconds; the verbs arrive within ms).
                busy = service.handle({"action": "step", "name": "s"})
                closed = service.handle({"action": "close", "name": "s"})
            finally:
                outcome = service.handle({"action": "result", "name": "s"})
            assert not busy["ok"]
            assert busy["error"]["code"] == "session_busy"
            assert not closed["ok"]
            assert closed["error"]["code"] == "session_busy"
            assert outcome["ok"] and outcome["result"]["ready"]

    def test_nonblocking_result_polls(self):
        with CometService(workers=2) as service:
            service.handle({"action": "create", "name": "s", "params": _params()})
            service.handle({"action": "run", "name": "s", "wait": False})
            polled = service.handle(
                {"action": "result", "name": "s", "wait": False}
            )
            assert polled["ok"]
            # Either it is still running (the common case) or already done;
            # both are valid poll answers with the ready discriminator.
            if not polled["result"]["ready"]:
                assert polled["result"] == {"name": "s", "ready": False}
                final = service.handle({"action": "result", "name": "s"})
                assert final["ok"] and final["result"]["ready"]

    def test_status_answers_while_other_session_runs(self):
        with CometService(workers=2) as service:
            service.handle({"action": "create", "name": "a", "params": _params(0)})
            service.handle({"action": "create", "name": "b", "params": _params(1)})
            service.handle({"action": "run", "name": "a", "wait": False})
            started = time.perf_counter()
            status = service.handle({"action": "status", "name": "b"})
            elapsed = time.perf_counter() - started
            assert status["ok"] and status["result"]["running"] is False
            assert elapsed < 1.0
            status_a = service.handle({"action": "status", "name": "a"})
            assert status_a["ok"]  # answers at an iteration boundary
            outcome = service.handle({"action": "result", "name": "a"})
            assert outcome["ok"] and outcome["result"]["finished"]

    def test_scheduler_bounds_concurrency_but_loses_no_work(self):
        # More concurrent runs than workers: the excess queue and all
        # finish with their own traces.
        names = [f"s{i}" for i in range(3)]
        with CometService(workers=2) as service:
            for i, name in enumerate(names):
                service.handle(
                    {"action": "create", "name": name, "params": _params(i)}
                )
            for name in names:
                assert service.handle(
                    {"action": "run", "name": name, "wait": False}
                )["ok"]
            outcomes = {
                name: service.handle({"action": "result", "name": name})
                for name in names
            }
            for name in names:
                assert outcomes[name]["ok"], outcomes[name]
                assert outcomes[name]["result"]["finished"]

    def test_shutdown_drains_inflight_jobs(self):
        service = CometService(workers=2)
        service.handle({"action": "create", "name": "s", "params": _params()})
        service.handle({"action": "run", "name": "s", "wait": False})
        service.shutdown()  # must not raise, must wait for the sweep
        assert service.handle({"action": "status"})["result"]["sessions"] == []
