"""Tests for the networked service transports (``repro.service.transport``).

Covers every verb over a real TCP socket, frame hardening (malformed,
oversized, truncated), the HTTP adapter, and the service's concurrency
contracts extended to the networked path: traces fetched over a socket
are bit-identical to in-process ``CometService.handle`` traces, and
``status`` on one session answers in under a second while another
session is mid-``run`` on a CleanML sweep.
"""

import json
import socket
import threading
import time

import pytest

from repro.service import (
    CometClient,
    CometClientError,
    CometConnectionError,
    CometHTTPServer,
    CometService,
    CometTCPServer,
)

_PARAMS = {
    "dataset": "cmc",
    "algorithm": "lor",
    "errors": ["missing"],
    "budget": 2,
    "rows": 130,
    "step": 0.05,
    "seed": 0,
}

#: A CleanML sweep slow enough (~1s+/iteration) to observe mid-run.
_CLEANML_PARAMS = {
    "dataset": "titanic",
    "cleanml": True,
    "algorithm": "mlp",
    "budget": 50,
    "step": 0.02,
    "seed": 0,
}


def _params(seed=0, **overrides):
    return {**_PARAMS, "seed": seed, **overrides}


@pytest.fixture
def service():
    with CometService(backend="thread", jobs=2, workers=2) as service:
        yield service


@pytest.fixture
def tcp_server(service):
    server = CometTCPServer(service)
    server.serve_background()
    yield server
    server.shutdown()
    server.server_close()


@pytest.fixture
def client(tcp_server):
    with CometClient(tcp_server.port, timeout=120) as client:
        yield client


def _raw_exchange(port, payload: bytes, *, half_close=False) -> list[bytes]:
    """Send raw bytes, return the newline-delimited response frames."""
    with socket.create_connection(("127.0.0.1", port), timeout=30) as sock:
        sock.sendall(payload)
        if half_close:
            sock.shutdown(socket.SHUT_WR)
        reader = sock.makefile("rb")
        return reader.read().splitlines() if half_close else [reader.readline()]


class TestVerbRoundTrip:
    """Every verb round-trips over a real socket."""

    def test_full_session_lifecycle(self, client, tmp_path):
        created = client.create("s", _params())
        assert created["open_candidates"] > 0

        everyone = client.status()
        assert everyone["sessions"] == ["s"]
        assert everyone["scheduler_workers"] >= 2
        assert set(everyone["quotas"]) == {
            "max_iterations", "max_seconds", "max_sessions", "max_cache_bytes",
        }

        status = client.status("s")
        assert status["iteration"] == 0 and status["running"] is False

        candidates = client.recommend("s", k=2)
        assert all(
            set(c) >= {"feature", "error", "predicted_f1", "score"}
            for c in candidates
        )

        stepped = client.step("s")
        assert stepped["record"]["iteration"] == 1

        scheduled = client.run("s", wait=False)
        assert scheduled == {"name": "s", "scheduled": True}
        outcome = client.result("s")
        assert outcome["ready"] and outcome["finished"]
        # The step's record stayed part of the session's single trace.
        assert outcome["trace"]["records"][0]["iteration"] == 1

        path = tmp_path / "net.ckpt"
        assert client.checkpoint("s", str(path)) == {"path": str(path)}
        assert client.close_session("s") == {"closed": "s"}

        reloaded = client.create("s2", checkpoint=str(path))
        assert reloaded["iteration"] == outcome["trace"]["records"][-1]["iteration"]

    def test_structured_errors_over_socket(self, client):
        with pytest.raises(CometClientError) as excinfo:
            client.status("ghost")
        assert excinfo.value.error_type == "KeyError"
        raw = client.call({"action": "warp"})
        assert not raw["ok"]
        assert set(raw["error"]) >= {"type", "message"}
        assert "unknown action" in raw["error"]["message"]

    def test_shutdown_verb_stops_server(self, service):
        server = CometTCPServer(service)
        thread = server.serve_background()
        with CometClient(server.port, timeout=30) as client:
            assert client.shutdown_server() == {"shutdown": True}
        thread.join(timeout=10)
        assert not thread.is_alive()
        server.server_close()


class TestFrameHardening:
    """Bad frames come back as errors; the server survives all of them."""

    def test_malformed_json_keeps_connection(self, tcp_server):
        with socket.create_connection(
            ("127.0.0.1", tcp_server.port), timeout=30
        ) as sock:
            reader = sock.makefile("rb")
            sock.sendall(b"this is { not json\n")
            bad = json.loads(reader.readline())
            assert not bad["ok"] and bad["error"]["code"] == "bad_frame"
            assert "invalid JSON" in bad["error"]["message"]
            # The same connection still serves valid requests.
            sock.sendall(json.dumps({"action": "status"}).encode() + b"\n")
            good = json.loads(reader.readline())
            assert good["ok"] and good["result"]["sessions"] == []

    def test_non_object_request_rejected(self, tcp_server):
        frames = _raw_exchange(tcp_server.port, b"[1, 2, 3]\n")
        response = json.loads(frames[0])
        assert not response["ok"]
        assert response["error"]["code"] == "bad_frame"
        assert "JSON object" in response["error"]["message"]

    def test_oversized_frame_rejected_connection_survives(self, service):
        server = CometTCPServer(service, max_frame=512)
        server.serve_background()
        try:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=30
            ) as sock:
                reader = sock.makefile("rb")
                huge = json.dumps({"action": "status", "pad": "x" * 2048})
                sock.sendall(huge.encode() + b"\n")
                response = json.loads(reader.readline())
                assert not response["ok"]
                assert response["error"]["code"] == "bad_frame"
                assert "exceeds 512" in response["error"]["message"]
                sock.sendall(json.dumps({"action": "status"}).encode() + b"\n")
                assert json.loads(reader.readline())["ok"]
        finally:
            server.shutdown()
            server.server_close()

    def test_exact_boundary_oversized_frame_does_not_eat_next_request(
        self, service
    ):
        # A frame of exactly max_frame+1 bytes *including* its newline is
        # already a complete line: the server must reject it without
        # draining (and thereby discarding) the request behind it.
        limit = 512
        server = CometTCPServer(service, max_frame=limit)
        server.serve_background()
        try:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=30
            ) as sock:
                reader = sock.makefile("rb")
                frame = b"x" * limit + b"\n"  # limit+1 bytes with newline
                follow_up = json.dumps({"action": "status"}).encode() + b"\n"
                sock.sendall(frame + follow_up)
                first = json.loads(reader.readline())
                assert first["error"]["code"] == "bad_frame"
                second = json.loads(reader.readline())
                assert second["ok"] and second["result"]["sessions"] == []
        finally:
            server.shutdown()
            server.server_close()

    def test_client_poisons_connection_after_timeout(self, tcp_server):
        with CometClient(tcp_server.port, timeout=120) as setup:
            setup.create("slowpoke", _params(budget=4))
        client = CometClient(tcp_server.port, timeout=0.2)
        try:
            with pytest.raises(OSError):
                client.run("slowpoke")  # a multi-second run vs a 0.2s timeout
            with pytest.raises(ConnectionError, match="desynchronized"):
                client.status()
        finally:
            client.close()
        # The server survives the broken client; a fresh connection works.
        with CometClient(tcp_server.port, timeout=120) as fresh:
            assert "slowpoke" in fresh.status()["sessions"]

    def test_truncated_frame_reports_error(self, tcp_server):
        frames = _raw_exchange(
            tcp_server.port, b'{"action": "stat', half_close=True
        )
        response = json.loads(frames[0])
        assert not response["ok"]
        assert response["error"]["code"] == "bad_frame"
        assert "truncated" in response["error"]["message"]

    def test_blank_lines_skipped(self, tcp_server):
        with socket.create_connection(
            ("127.0.0.1", tcp_server.port), timeout=30
        ) as sock:
            reader = sock.makefile("rb")
            sock.sendall(b"\n   \n" + json.dumps({"action": "status"}).encode() + b"\n")
            response = json.loads(reader.readline())
            assert response["ok"] and "sessions" in response["result"]


class TestClientResilience:
    """``CometClient`` connect retries and mid-call disconnect wrapping."""

    def test_connect_retries_until_server_appears(self, service):
        # Grab a free port, then start the server on it *after* the
        # client has begun dialing — the retry loop must bridge the gap.
        placeholder = socket.create_server(("127.0.0.1", 0))
        port = placeholder.getsockname()[1]
        placeholder.close()
        server_box = {}

        def late_start():
            time.sleep(0.4)
            server_box["server"] = CometTCPServer(service, ("127.0.0.1", port))
            server_box["server"].serve_background()

        thread = threading.Thread(target=late_start, daemon=True)
        thread.start()
        try:
            with CometClient(port, timeout=30, retries=10, backoff=0.15) as client:
                assert client.call({"action": "status"})["ok"]
        finally:
            thread.join(timeout=10)
            server = server_box.get("server")
            if server is not None:
                server.shutdown()
                server.server_close()

    def test_connect_retries_exhausted(self):
        placeholder = socket.create_server(("127.0.0.1", 0))
        port = placeholder.getsockname()[1]
        placeholder.close()  # nothing listens here anymore
        start = time.monotonic()
        with pytest.raises(CometConnectionError) as excinfo:
            CometClient(port, retries=2, backoff=0.05)
        assert time.monotonic() - start < 30
        error = excinfo.value
        assert isinstance(error, ConnectionError)  # legacy except clauses
        assert isinstance(error, CometClientError)
        assert error.code == "connection_lost"
        assert error.details["retries"] == 2
        assert "2 attempt" in str(error)

    def test_mid_call_disconnect_wrapped(self):
        # A bare listener that accepts one connection, reads the request,
        # then vanishes without replying — the server dying mid-call.
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]

        def vanish():
            conn, _ = listener.accept()
            conn.recv(4096)
            conn.close()

        thread = threading.Thread(target=vanish, daemon=True)
        thread.start()
        client = CometClient(port, timeout=30)
        try:
            with pytest.raises(CometConnectionError, match="closed the connection"):
                client.call({"action": "status"})
            # The connection is poisoned: later calls fail fast, and the
            # error still satisfies legacy ``except ConnectionError``.
            with pytest.raises(ConnectionError, match="desynchronized"):
                client.call({"action": "status"})
        finally:
            client.close()
            listener.close()
            thread.join(timeout=10)

    def test_retries_must_be_positive(self):
        with pytest.raises(ValueError, match="retries"):
            CometClient(1, retries=0)


class TestNetworkedDeterminism:
    """The determinism contract of ``tests/test_service.py`` holds over TCP:
    concurrently driven networked sessions yield traces bit-identical to
    serial in-process ``CometService.handle`` runs."""

    def test_concurrent_networked_traces_equal_in_process(self, tcp_server):
        seeds = [0, 1, 2]
        reference = {}
        for seed in seeds:
            with CometService() as isolated:
                isolated.handle(
                    {"action": "create", "name": "r", "params": _params(seed)}
                )
                response = isolated.handle({"action": "run", "name": "r"})
                assert response["ok"]
                reference[seed] = response["result"]["trace"]

        traces = {}
        errors = []

        def drive(seed):
            try:
                with CometClient(tcp_server.port, timeout=300) as client:
                    client.create(f"n{seed}", _params(seed))
                    traces[seed] = client.run(f"n{seed}")["trace"]
            except Exception as exc:  # pragma: no cover — surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=drive, args=(s,)) for s in seeds]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for seed in seeds:
            assert json.dumps(traces[seed], sort_keys=True) == json.dumps(
                reference[seed], sort_keys=True
            )


class TestLiveSocketResponsiveness:
    """The acceptance scenario: ``status`` on session B answers in <1s
    while session A is mid-``run`` on a CleanML sweep, and A's networked
    trace is bit-identical to the in-process path."""

    def test_status_fast_while_cleanml_run_in_flight(self, tcp_server):
        sweeps = 4
        with CometService() as isolated:
            isolated.handle(
                {"action": "create", "name": "ref", "params": _CLEANML_PARAMS}
            )
            response = isolated.handle(
                {"action": "run", "name": "ref", "max_iterations": sweeps}
            )
            assert response["ok"]
            reference = response["result"]["trace"]

        with CometClient(tcp_server.port, timeout=300) as client:
            client.create("a", _CLEANML_PARAMS)
            client.create("b", _params())
            assert client.run("a", max_iterations=sweeps, wait=False) == {
                "name": "a",
                "scheduled": True,
            }
            # Wait until A is demonstrably mid-run.
            deadline = time.monotonic() + 30
            while not client.status("a")["running"]:
                assert time.monotonic() < deadline, "run never started"
                time.sleep(0.01)
            latencies = []
            while client.status("a")["running"] and len(latencies) < 5:
                started = time.perf_counter()
                status = client.status("b")
                latencies.append(time.perf_counter() - started)
                assert status["iteration"] == 0
            assert latencies, "run finished before status could be measured"
            assert max(latencies) < 1.0, f"status too slow: {latencies}"

            outcome = client.result("a")
            assert outcome["ready"]
            assert json.dumps(outcome["trace"], sort_keys=True) == json.dumps(
                reference, sort_keys=True
            )


class TestHTTPAdapter:
    """The minimal HTTP/1.1 surface maps onto the same verbs."""

    @pytest.fixture
    def http_server(self, service):
        server = CometHTTPServer(service, max_frame=64_000)
        server.serve_background()
        yield server
        server.shutdown()
        server.server_close()

    @staticmethod
    def _request(server, method, path, body=None):
        import urllib.error
        import urllib.request

        data = None if body is None else json.dumps(body).encode()
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=120) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def test_verbs_over_http(self, http_server):
        status, created = self._request(
            http_server, "POST", "/create", {"name": "h", "params": _params()}
        )
        assert status == 200 and created["ok"]
        assert created["result"]["open_candidates"] > 0

        status, listed = self._request(http_server, "GET", "/status")
        assert status == 200 and listed["result"]["sessions"] == ["h"]

        status, named = self._request(http_server, "GET", "/status/h")
        assert status == 200 and named["result"]["iteration"] == 0

        status, stepped = self._request(
            http_server, "POST", "/rpc", {"action": "step", "name": "h"}
        )
        assert status == 200 and stepped["result"]["record"]["iteration"] == 1

        status, ran = self._request(http_server, "POST", "/run", {"name": "h"})
        assert status == 200 and ran["result"]["finished"]

        status, closed = self._request(
            http_server, "POST", "/close", {"name": "h"}
        )
        assert status == 200 and closed["result"] == {"closed": "h"}

    def test_http_error_statuses(self, http_server):
        status, response = self._request(
            http_server, "POST", "/step", {"name": "ghost"}
        )
        assert status == 400 and response["error"]["type"] == "KeyError"

        status, response = self._request(http_server, "GET", "/nope")
        assert status == 404 and response["error"]["code"] == "bad_frame"

        status, response = self._request(
            http_server, "POST", "/rpc", {"name": "no-action"}
        )
        assert status == 400 and "unknown action" in response["error"]["message"]

        status, response = self._request(
            http_server, "POST", "/create", {"name": "big", "pad": "x" * 100_000}
        )
        assert status == 413 and "exceeds" in response["error"]["message"]

    def test_http_bad_content_length(self, http_server):
        import http.client

        for value in ("abc", "-5"):
            conn = http.client.HTTPConnection("127.0.0.1", http_server.port)
            try:
                conn.putrequest("POST", "/status")
                conn.putheader("Content-Length", value)
                conn.endheaders()
                response = conn.getresponse()
                payload = json.loads(response.read())
                assert response.status == 400
                assert payload["error"]["code"] == "bad_frame"
                assert "Content-Length" in payload["error"]["message"]
                # The unreadable body desynchronized the stream: the
                # server must drop the keep-alive connection.
                assert response.getheader("Connection") == "close"
            finally:
                conn.close()

    def test_http_oversized_body_closes_keep_alive(self, http_server):
        # The 413 path leaves the body unread; keeping the connection
        # alive would parse those bytes as the next request.
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", http_server.port)
        try:
            body = json.dumps({"name": "big", "pad": "x" * 100_000}).encode()
            conn.request("POST", "/create", body=body,
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            payload = json.loads(response.read())
            assert response.status == 413
            assert "exceeds" in payload["error"]["message"]
            assert response.getheader("Connection") == "close"
        finally:
            conn.close()

    def test_http_shutdown(self, service):
        server = CometHTTPServer(service)
        thread = server.serve_background()
        status, response = self._request(server, "POST", "/shutdown", {})
        assert status == 200 and response["result"] == {"shutdown": True}
        thread.join(timeout=10)
        assert not thread.is_alive()
        server.server_close()
