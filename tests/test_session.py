"""Tests for the session protocol (``repro.session``).

The headline contract: a session checkpointed mid-run and resumed from
disk produces a trace *bit-identical* to an uninterrupted run — across
serial and pooled backends (extending the ``repro.runtime`` determinism
contract across restarts). Plus: versioned checkpoint envelopes, observer
hooks, state snapshots, and the ``Comet`` façade staying in sync with
the session underneath.
"""

import pickle

import numpy as np
import pytest

from repro.core import Comet, CometConfig
from repro.datasets import load_dataset, pollute
from repro.session import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    CheckpointVersionError,
    CleaningSession,
    SessionObserver,
    SessionState,
)


def _polluted(rows=130, seed=7):
    dataset = load_dataset("cmc", n_rows=rows)
    return pollute(dataset, error_types=["missing"], rng=seed)


def _session(polluted, budget=4.0, rng=0, **kwargs):
    return CleaningSession.create(
        polluted,
        algorithm="lor",
        error_types=["missing"],
        budget=budget,
        config=CometConfig(step=0.05),
        rng=rng,
        **kwargs,
    )


@pytest.fixture(scope="module")
def polluted():
    return _polluted()


class TestSessionBasics:
    def test_run_returns_trace_and_finishes(self, polluted):
        session = _session(polluted)
        trace = session.run()
        assert session.is_finished
        assert trace is session.trace
        assert 0.0 <= trace.initial_f1 <= 1.0
        assert trace.records

    def test_step_appends_to_trace(self, polluted):
        session = _session(polluted)
        record = session.step()
        assert record is not None
        assert session.trace.records == [record]

    def test_create_matches_comet_facade(self, polluted):
        # The façade and the session protocol must consume RNG identically.
        direct = _session(polluted).run()
        via_comet = Comet(
            polluted,
            algorithm="lor",
            error_types=["missing"],
            budget=4.0,
            config=CometConfig(step=0.05),
            rng=0,
        ).run()
        assert direct == via_comet

    def test_state_snapshot(self, polluted):
        session = _session(polluted)
        status = session.status()
        assert status["iteration"] == 0
        assert status["budget_spent"] == 0.0
        assert not status["finished"]
        session.step()
        status = session.status()
        assert status["iteration"] == 1
        assert status["records"] == 1
        assert isinstance(session.state.rng_state, dict)

    def test_comet_attributes_stay_assignable(self, polluted):
        # The façade keeps the monolithic class's plain-attribute
        # semantics: assignment writes through to the session state.
        from repro.cleaning import Budget, CleaningBuffer, paper_cost_model
        from repro.errors import MissingValues

        comet = Comet(polluted, algorithm="lor", budget=2.0,
                      config=CometConfig(step=0.05), rng=0)
        comet.budget = Budget(20.0)
        assert comet.session.state.budget.total == 20.0
        comet.cost_model = paper_cost_model()
        assert comet.session.state.cost_model.next_cost("f", "missing") == 2.0
        comet.buffer = CleaningBuffer()
        assert len(comet.buffer) == 0
        comet.errors = [MissingValues()]
        assert comet.session._error_by_name.keys() == {"missing"}

    def test_comet_exposes_session(self, polluted):
        comet = Comet(polluted, algorithm="lor", budget=2.0,
                      config=CometConfig(step=0.05), rng=0)
        assert isinstance(comet.session, CleaningSession)
        assert comet.session.state.dataset is comet.dataset


class TestCheckpointResume:
    """Save mid-run, load, finish → bit-identical to an uninterrupted run."""

    @pytest.mark.parametrize("backend,jobs", [("serial", 1), ("process", 2)])
    def test_roundtrip_bit_identical(self, polluted, tmp_path, backend, jobs):
        uninterrupted = _session(polluted, backend=backend, jobs=jobs)
        full = uninterrupted.run()
        uninterrupted.close()

        interrupted = _session(polluted, backend=backend, jobs=jobs)
        interrupted.step()
        interrupted.step()
        path = tmp_path / "session.ckpt"
        interrupted.save(path)
        interrupted.close()
        del interrupted

        resumed = CleaningSession.load(path, backend=backend, jobs=jobs)
        combined = resumed.run()
        resumed.close()
        assert combined == full

    def test_resume_across_backends(self, polluted, tmp_path):
        # A checkpoint written under one backend resumes identically under
        # another: the backend is engine-side, never part of the state.
        full = _session(polluted).run()
        interrupted = _session(polluted, backend="thread", jobs=2)
        interrupted.step()
        path = tmp_path / "session.ckpt"
        interrupted.save(path)
        interrupted.close()
        resumed = CleaningSession.load(path, backend="serial")
        assert resumed.run() == full

    def test_comet_save_load(self, polluted, tmp_path):
        full = Comet(polluted, algorithm="lor", error_types=["missing"],
                     budget=4.0, config=CometConfig(step=0.05), rng=0).run()
        comet = Comet(polluted, algorithm="lor", error_types=["missing"],
                      budget=4.0, config=CometConfig(step=0.05), rng=0)
        comet.step()
        path = tmp_path / "comet.ckpt"
        comet.save(path)
        resumed = Comet.load(path)
        assert resumed.run() == full

    def test_checkpoint_preserves_progress(self, polluted, tmp_path):
        session = _session(polluted)
        session.step()
        path = tmp_path / "session.ckpt"
        session.save(path)
        resumed = CleaningSession.load(path)
        assert resumed.state.iteration == session.state.iteration
        assert resumed.state.budget.spent == session.state.budget.spent
        assert resumed.open_candidates() == session.open_candidates()
        assert resumed.trace == session.trace


class TestCheckpointEnvelope:
    def test_not_a_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        with open(path, "wb") as fh:
            pickle.dump({"something": "else"}, fh)
        with pytest.raises(ValueError, match="not a repro session checkpoint"):
            SessionState.load(path)

    def test_future_version_rejected(self, polluted, tmp_path):
        session = _session(polluted)
        path = tmp_path / "session.ckpt"
        with open(path, "wb") as fh:
            pickle.dump(
                {
                    "format": CHECKPOINT_FORMAT,
                    "version": CHECKPOINT_VERSION + 1,
                    "state": session.state,
                },
                fh,
            )
        # The dedicated error carries both versions (attributes and
        # message) and stays a ValueError for existing callers.
        with pytest.raises(CheckpointVersionError) as excinfo:
            SessionState.load(path)
        error = excinfo.value
        assert isinstance(error, ValueError)
        assert error.found == CHECKPOINT_VERSION + 1
        assert error.supported == CHECKPOINT_VERSION
        assert str(CHECKPOINT_VERSION + 1) in str(error)
        assert str(CHECKPOINT_VERSION) in str(error)

    def test_versionless_envelope_rejected(self, polluted, tmp_path):
        session = _session(polluted)
        path = tmp_path / "session.ckpt"
        with open(path, "wb") as fh:
            pickle.dump(
                {"format": CHECKPOINT_FORMAT, "state": session.state}, fh
            )
        with pytest.raises(CheckpointVersionError) as excinfo:
            SessionState.load(path)
        assert excinfo.value.found is None


class _Recorder(SessionObserver):
    def __init__(self):
        self.iterations = []
        self.accepts = []
        self.reverts = []

    def on_iteration(self, session, records):
        self.iterations.append(list(records))

    def on_accept(self, session, record):
        self.accepts.append(record)

    def on_revert(self, session, feature, error):
        self.reverts.append((feature, error))


class TestObservers:
    def test_hooks_stream_progress(self, polluted):
        recorder = _Recorder()
        session = _session(polluted, observers=(recorder,))
        trace = session.run()
        # Every kept record was announced, in order, and each sweep fired
        # exactly one on_iteration call.
        assert recorder.accepts == trace.records
        assert sum(len(r) for r in recorder.iterations) == len(trace.records)
        # Reverted candidates show up in the records' rejected lists.
        rejected = [pair for r in trace.records for pair in r.rejected]
        assert recorder.reverts == rejected

    def test_add_remove_observer(self, polluted):
        recorder = _Recorder()
        session = _session(polluted)
        session.add_observer(recorder)
        session.step()
        seen = len(recorder.iterations)
        assert seen == 1
        session.remove_observer(recorder)
        session.step()
        assert len(recorder.iterations) == seen

    def test_observers_do_not_affect_trace(self, polluted):
        plain = _session(polluted).run()
        observed = _session(polluted, observers=(_Recorder(),)).run()
        assert plain == observed
