"""Tests for the durable session store (``repro.store``).

The headline contract: a session served with ``--state-dir`` and killed
hard resumes from its last persisted iteration boundary and replays to a
trace *bit-identical* to one that never restarted — the determinism
contract of ``repro.session`` extended across process death. Around it:
the versioned envelope (atomic writes, header-only metadata reads), the
migration registry (v1 checkpoints written by earlier builds keep
loading), the :class:`DirectorySessionStore` write-behind/index/compact
behavior, and the service wiring (boundary snapshots, lazy rehydration,
eviction, quota continuity).
"""

import io
import json
import os
import pickle
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core import CometConfig
from repro.datasets import load_dataset, pollute
from repro.experiments import Configuration, build_polluted
from repro.service import CometService, SessionQuotas
from repro.session import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    CheckpointVersionError,
    CleaningSession,
    SessionState,
)
from repro.session.state import (
    atomic_write_bytes,
    read_checkpoint,
    read_checkpoint_meta,
)
from repro.store import (
    DirectorySessionStore,
    can_migrate,
    migrate_checkpoint,
    migrate_envelope,
    migration_chain,
    register_migration,
    registered_migrations,
)


def _polluted(rows=120, seed=7):
    dataset = load_dataset("cmc", n_rows=rows)
    return pollute(dataset, error_types=["missing"], rng=seed)


def _session(polluted, budget=3.0, rng=0, **kwargs):
    return CleaningSession.create(
        polluted,
        algorithm="lor",
        error_types=["missing"],
        budget=budget,
        config=CometConfig(step=0.05),
        rng=rng,
        **kwargs,
    )


@pytest.fixture(scope="module")
def polluted():
    return _polluted()


def _records(trace):
    return [record.to_dict() for record in trace.records]


def _write_v1_checkpoint(path, state) -> None:
    """Write a checkpoint exactly as the version-1 builds did.

    One pickled dict, state inline, no metadata — byte-for-byte the old
    ``SessionState.save``. The migration tests load these through the
    v1→v2 hook, which is the acceptance path for directories written by
    pre-upgrade deployments.
    """
    envelope = {"format": CHECKPOINT_FORMAT, "version": 1, "state": state}
    with open(path, "wb") as fh:
        pickle.dump(envelope, fh)


# Verb parameters used by every service-level test in this module, and
# the matching in-process construction (what `_handle_create` builds) —
# the uninterrupted reference every resumed trace is compared against.
_PARAMS = {
    "dataset": "cmc",
    "rows": 100,
    "algorithm": "lor",
    "budget": 10.0,  # ~5 iterations on this slice: room to crash mid-run
    "step": 0.05,
    "seed": 5,
}


def _reference_trace_dict():
    config = Configuration(
        dataset=_PARAMS["dataset"],
        algorithm=_PARAMS["algorithm"],
        error_types=("missing",),
        n_rows=_PARAMS["rows"],
        budget=_PARAMS["budget"],
        step=_PARAMS["step"],
    )
    dataset = build_polluted(config, seed=_PARAMS["seed"])
    with CleaningSession.create(
        dataset,
        algorithm=config.algorithm,
        error_types=list(config.error_types),
        budget=config.budget,
        cost_model=config.make_cost_model(),
        config=config.make_comet_config(),
        rng=_PARAMS["seed"],
    ) as session:
        return session.run().to_dict()


class TestAtomicCheckpoint:
    def test_save_leaves_no_tmp_strays(self, polluted, tmp_path):
        session = _session(polluted)
        path = tmp_path / "session.ckpt"
        session.save(path)
        assert path.exists()
        assert [p.name for p in tmp_path.iterdir()] == ["session.ckpt"]
        resumed = SessionState.load(path)
        assert resumed.iteration == session.state.iteration

    def test_failed_replace_keeps_previous_checkpoint(
        self, polluted, tmp_path, monkeypatch
    ):
        session = _session(polluted)
        path = tmp_path / "session.ckpt"
        session.save(path)
        before = path.read_bytes()

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            session.save(path)
        monkeypatch.undo()
        # The old complete checkpoint survives and the tmp file is gone.
        assert path.read_bytes() == before
        assert [p.name for p in tmp_path.iterdir()] == ["session.ckpt"]
        assert SessionState.load(path).iteration == session.state.iteration

    def test_meta_rides_in_the_header(self, polluted, tmp_path):
        path = tmp_path / "session.ckpt"
        _session(polluted).save(path, meta={"client": "tester"})
        header = read_checkpoint_meta(path)
        assert header["format"] == CHECKPOINT_FORMAT
        assert header["version"] == CHECKPOINT_VERSION
        assert header["meta"]["client"] == "tester"
        assert header["meta"]["created"] <= header["meta"]["updated"]

    def test_header_readable_even_when_state_is_truncated(
        self, polluted, tmp_path
    ):
        # The v2 layout's point: tooling reads metadata without touching
        # the state pickle — so a header survives a truncated state.
        whole = tmp_path / "whole.ckpt"
        _session(polluted).save(whole)
        data = whole.read_bytes()
        buffer = io.BytesIO(data)
        pickle.load(buffer)  # consume exactly the header pickle
        cut = tmp_path / "cut.ckpt"
        cut.write_bytes(data[: buffer.tell()])
        assert read_checkpoint_meta(cut)["version"] == CHECKPOINT_VERSION
        with pytest.raises(ValueError, match="truncated"):
            read_checkpoint(cut)

    def test_atomic_write_bytes_roundtrip(self, tmp_path):
        path = tmp_path / "blob"
        atomic_write_bytes(path, b"one")
        atomic_write_bytes(path, b"two", fsync=False)
        assert path.read_bytes() == b"two"


class TestMigration:
    def test_v1_raises_migratable_version_error(self, polluted, tmp_path):
        path = tmp_path / "old.ckpt"
        _write_v1_checkpoint(path, _session(polluted).state)
        with pytest.raises(CheckpointVersionError) as excinfo:
            SessionState.load(path)
        error = excinfo.value
        assert error.found == 1
        assert error.supported == CHECKPOINT_VERSION
        assert error.migratable is True
        assert "sessions migrate" in str(error)

    def test_unknown_version_is_not_migratable(self, polluted, tmp_path):
        path = tmp_path / "future.ckpt"
        envelope = {
            "format": CHECKPOINT_FORMAT,
            "version": 99,
            "state": _session(polluted).state,
        }
        with open(path, "wb") as fh:
            pickle.dump(envelope, fh)
        with pytest.raises(CheckpointVersionError) as excinfo:
            SessionState.load(path, migrate=True)
        assert excinfo.value.migratable is False
        assert "sessions migrate" not in str(excinfo.value)

    def test_v1_checkpoint_resumes_bit_identically(self, polluted, tmp_path):
        # The acceptance path: a mid-run checkpoint in the pre-upgrade
        # layout loads through the v1→v2 hook and replays exactly.
        reference = _session(polluted, rng=3).run()

        session = _session(polluted, rng=3)
        session.step()
        path = tmp_path / "old.ckpt"
        _write_v1_checkpoint(path, session.state)

        state = SessionState.load(path, migrate=True)
        with CleaningSession(state) as resumed:
            trace = resumed.run()
        assert _records(trace) == _records(reference)

    def test_migrate_checkpoint_rewrites_in_place(self, polluted, tmp_path):
        path = tmp_path / "old.ckpt"
        _write_v1_checkpoint(path, _session(polluted).state)
        summary = migrate_checkpoint(path)
        assert summary["migrated"] is True
        assert summary["from_version"] == 1
        assert summary["to_version"] == CHECKPOINT_VERSION
        header = read_checkpoint_meta(path)
        assert header["version"] == CHECKPOINT_VERSION
        assert header["meta"]["migrated_from"] == 1
        # Now current: plain load works, and a second migrate is a no-op.
        SessionState.load(path)
        assert migrate_checkpoint(path)["migrated"] is False

    def test_migrate_checkpoint_to_separate_output(self, polluted, tmp_path):
        src = tmp_path / "old.ckpt"
        _write_v1_checkpoint(src, _session(polluted).state)
        out = tmp_path / "new.ckpt"
        assert migrate_checkpoint(src, out=out)["migrated"] is True
        assert read_checkpoint_meta(out)["version"] == CHECKPOINT_VERSION
        assert read_checkpoint(src)["version"] == 1  # source untouched

    def test_registry_chain(self):
        assert registered_migrations()[1] == 2
        assert migration_chain(1) == [(1, CHECKPOINT_VERSION)]
        assert migration_chain(CHECKPOINT_VERSION) == []
        assert migration_chain(99) is None
        assert can_migrate(1) is True
        assert can_migrate(None) is False

    def test_register_migration_validates(self):
        with pytest.raises(ValueError, match="forward"):
            register_migration(3, 3)
        with pytest.raises(ValueError, match="already registered"):
            register_migration(1, 5)(lambda envelope: envelope)

    def test_buggy_migration_step_is_caught(self):
        from repro.store import migrate as migrate_module

        @register_migration(90, 91)
        def _stuck(envelope):
            return envelope  # forgets to advance the version

        try:
            with pytest.raises(RuntimeError, match="left the envelope"):
                migrate_envelope({"version": 90, "state": None}, target=91)
        finally:
            migrate_module._MIGRATIONS.pop(90)


class TestDirectorySessionStore:
    def test_put_flush_load_roundtrip(self, polluted, tmp_path):
        reference = _session(polluted, rng=1).run()
        session = _session(polluted, rng=1)
        session.step()
        with DirectorySessionStore(tmp_path / "state") as store:
            store.put("alpha", session.state, meta={"iteration": 1})
            store.flush()
            assert "alpha" in store
            assert store.names() == ["alpha"]
            meta = store.meta("alpha")
            assert meta["iteration"] == 1
            assert meta["name"] == "alpha"
            with CleaningSession(store.load("alpha")) as resumed:
                trace = resumed.run()
        assert _records(trace) == _records(reference)

    def test_writes_coalesce_and_converge(self, polluted, tmp_path):
        state = _session(polluted).state
        with DirectorySessionStore(tmp_path / "state") as store:
            for i in range(5):
                store.put("alpha", state, meta={"iteration": i})
            store.flush()
            stats = store.stats()
            # Every put is either written or coalesced into a newer one,
            # and the store converges on the newest snapshot.
            assert stats["writes"] + stats["coalesced_writes"] == 5
            assert stats["pending_writes"] == 0
            assert store.meta("alpha")["iteration"] == 4

    def test_created_is_preserved_across_rewrites(self, polluted, tmp_path):
        state = _session(polluted).state
        with DirectorySessionStore(tmp_path / "state") as store:
            store.put("alpha", state)
            store.flush()
            created = store.meta("alpha")["created"]
            store.put("alpha", state)
            store.flush()
            meta = store.meta("alpha")
            assert meta["created"] == created
            assert meta["updated"] >= created

    def test_delete_evicts_file_and_index(self, polluted, tmp_path):
        root = tmp_path / "state"
        state = _session(polluted).state
        with DirectorySessionStore(root) as store:
            store.put("alpha", state)
            store.flush()
            store.delete("alpha")
            assert "alpha" not in store
            with pytest.raises(KeyError):
                store.load("alpha")
        assert list(root.glob("sessions/*.ckpt")) == []
        index = json.loads((root / "index.json").read_text())
        assert index["sessions"] == {}

    def test_load_unknown_name(self, tmp_path):
        with DirectorySessionStore(tmp_path / "state") as store:
            with pytest.raises(KeyError, match="ghost"):
                store.load("ghost")
            with pytest.raises(KeyError, match="ghost"):
                store.meta("ghost")

    def test_index_rebuilt_from_directory_scan(self, polluted, tmp_path):
        # Lost index: the envelope header carries the session name, so a
        # directory scan reconstructs the listing.
        root = tmp_path / "state"
        state = _session(polluted).state
        with DirectorySessionStore(root) as store:
            store.put("alpha", state, meta={"iteration": 0})
            store.flush()
        (root / "index.json").unlink()
        with DirectorySessionStore(root) as store:
            assert store.names() == ["alpha"]
            assert store.meta("alpha")["iteration"] == 0
            assert isinstance(store.load("alpha"), SessionState)
        assert (root / "index.json").exists()

    def test_corrupt_index_rebuilt(self, polluted, tmp_path):
        root = tmp_path / "state"
        with DirectorySessionStore(root) as store:
            store.put("alpha", _session(polluted).state)
            store.flush()
        (root / "index.json").write_text("{ not json")
        with DirectorySessionStore(root) as store:
            assert store.names() == ["alpha"]

    def test_inline_mode_writes_synchronously(self, polluted, tmp_path):
        root = tmp_path / "state"
        with DirectorySessionStore(root, write_behind=False) as store:
            store.put("alpha", _session(polluted).state)
            # No flush: the put itself performed the I/O.
            assert store.stats()["writes"] == 1
            assert store.stats()["pending_writes"] == 0
        assert len(list(root.glob("sessions/*.ckpt"))) == 1

    def test_store_refuses_use_after_close(self, polluted, tmp_path):
        store = DirectorySessionStore(tmp_path / "state")
        store.close()
        store.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            store.put("alpha", _session(polluted).state)

    def test_abort_simulates_crash(self, polluted, tmp_path):
        store = DirectorySessionStore(tmp_path / "state")
        store.abort()
        store.flush()  # returns instead of hanging on a dead writer
        with pytest.raises(RuntimeError, match="closed"):
            store.put("alpha", _session(polluted).state)

    def test_compact_reconciles_the_directory(self, polluted, tmp_path):
        root = tmp_path / "state"
        state = _session(polluted).state
        with DirectorySessionStore(root) as store:
            store.put("alpha", state, meta={"finished": False})
            store.put("beta", state, meta={"finished": True})
            store.flush()
            alpha_file = root / "sessions" / store._index["alpha"]["file"]

        with DirectorySessionStore(root) as store:
            # Simulate crash debris and operator traffic: a stray tmp
            # file, a checkpoint deleted behind the index's back, and a
            # foreign checkpoint copied in without an index entry.
            (root / "sessions" / "junk.ckpt.tmp-999-0").write_bytes(b"junk")
            stray = root / "sessions" / "copied-in.ckpt"
            stray.write_bytes(alpha_file.read_bytes())
            alpha_file.unlink()
            summary = store.compact()
            assert summary["tmp_removed"] == 1
            assert summary["entries_dropped"] == 1  # alpha's file vanished
            assert summary["adopted"] == 1  # ...but the copy is adopted
            assert store.names() == ["alpha", "beta"]
            assert isinstance(store.load("alpha"), SessionState)

            summary = store.compact(drop_finished=True)
            assert summary["finished_dropped"] == 1
            assert store.names() == ["alpha"]

    def test_load_migrates_v1_files_in_place(self, polluted, tmp_path):
        # A state directory populated by a version-1 build keeps working:
        # compact adopts the file, load runs the migration chain.
        reference = _session(polluted, rng=2).run()
        session = _session(polluted, rng=2)
        session.step()
        root = tmp_path / "state"
        (root / "sessions").mkdir(parents=True)
        _write_v1_checkpoint(root / "sessions" / "legacy.ckpt", session.state)
        with DirectorySessionStore(root) as store:
            assert store.names() == ["legacy"]
            with CleaningSession(store.load("legacy")) as resumed:
                trace = resumed.run()
            assert store.stats()["migrations"] == 1
        assert _records(trace) == _records(reference)

    def test_stats_shape(self, tmp_path):
        with DirectorySessionStore(tmp_path / "state") as store:
            stats = store.stats()
        assert {
            "root",
            "persisted_sessions",
            "bytes",
            "pending_writes",
            "write_behind_lag_s",
            "last_write_s",
            "last_error",
            "writes",
            "bytes_written",
            "coalesced_writes",
            "rehydrations",
            "migrations",
            "write_errors",
        } <= set(stats)


class TestServiceDurability:
    """The store wired through ``CometService`` — the serve --state-dir
    machinery, exercised in process (the subprocess path is below)."""

    def _create(self, service, name="durable"):
        response = service.handle(
            {"action": "create", "name": name, "params": _PARAMS}
        )
        assert response["ok"], response
        return response["result"]

    def test_crash_resume_trace_bit_identical(self, tmp_path):
        root = tmp_path / "state"
        store = DirectorySessionStore(root)
        service = CometService(store=store)
        self._create(service)
        for _ in range(2):
            assert service.handle({"action": "step", "name": "durable"})["ok"]
        store.flush()
        assert store.meta("durable")["iteration"] == 2
        # Hard crash: no final snapshot, pending dropped. (The service
        # shutdown afterwards only reclaims scheduler threads — the
        # aborted store refuses its farewell snapshot, like a real kill.)
        store.abort()
        service.shutdown()

        store = DirectorySessionStore(root)
        service = CometService(store=store)
        assert service.resume_persisted() == ["durable"]
        assert service.names() == ["durable"]
        # Registration is lazy: nothing is unpickled until a verb lands.
        assert store.stats()["rehydrations"] == 0
        response = service.handle({"action": "run", "name": "durable"})
        assert response["ok"], response
        assert store.stats()["rehydrations"] == 1
        assert response["result"]["trace"] == _reference_trace_dict()
        service.shutdown()

    def test_boundary_snapshots_and_status_stats(self, tmp_path):
        store = DirectorySessionStore(tmp_path / "state")
        with CometService(store=store) as service:
            self._create(service)
            store.flush()
            assert store.meta("durable")["iteration"] == 0  # newborn persisted
            assert service.handle({"action": "step", "name": "durable"})["ok"]
            store.flush()
            meta = store.meta("durable")
            assert meta["iteration"] == 1
            assert meta["client"] == "local"
            assert meta["backend"] == {"name": "serial", "workers": 1}
            status = service.handle({"action": "status"})["result"]
            assert status["store"]["persisted_sessions"] == 1
            assert status["store"]["root"] == str(store.root)

    def test_close_evicts_live_and_cold_sessions(self, tmp_path):
        root = tmp_path / "state"
        store = DirectorySessionStore(root)
        service = CometService(store=store)
        self._create(service)
        assert service.handle({"action": "close", "name": "durable"})["ok"]
        assert "durable" not in store
        service.shutdown()

        store = DirectorySessionStore(root)
        service = CometService(store=store)
        self._create(service)
        store.flush()
        store.abort()
        service.shutdown()
        store = DirectorySessionStore(root)
        service = CometService(store=store)
        assert service.resume_persisted() == ["durable"]
        # Closing a cold marker evicts without ever rehydrating it.
        assert service.handle({"action": "close", "name": "durable"})["ok"]
        assert "durable" not in store
        assert store.stats()["rehydrations"] == 0
        service.shutdown()

    def test_graceful_shutdown_persists_final_boundary(self, tmp_path):
        root = tmp_path / "state"
        store = DirectorySessionStore(root)
        service = CometService(store=store)
        self._create(service)
        assert service.handle({"action": "step", "name": "durable"})["ok"]
        service.shutdown()  # final snapshot + flush + close
        with DirectorySessionStore(root) as fresh:
            assert fresh.meta("durable")["iteration"] == 1

    def test_quota_slots_survive_restart(self, tmp_path):
        root = tmp_path / "state"
        quotas = SessionQuotas(max_sessions=1)
        store = DirectorySessionStore(root)
        service = CometService(store=store, quotas=quotas)
        self._create(service)
        store.flush()
        store.abort()
        service.shutdown()

        store = DirectorySessionStore(root)
        service = CometService(store=store, quotas=SessionQuotas(max_sessions=1))
        service.resume_persisted()
        # The cold persisted session holds its client's only slot.
        response = service.handle(
            {"action": "create", "name": "second", "params": _PARAMS}
        )
        assert not response["ok"]
        assert response["error"]["code"] == "quota_exceeded"
        service.shutdown()


class TestServeStateDirEndToEnd:
    """`serve --state-dir` killed with SIGKILL resumes bit-identically."""

    def _spawn(self, state_dir):
        import repro

        src = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                "0",
                "--state-dir",
                str(state_dir),
            ],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        resumed = proc.stdout.readline().strip()
        assert resumed.startswith(f"state dir {state_dir}: resumed "), resumed
        ready = proc.stdout.readline().strip()
        assert ready.startswith("serving tcp on 127.0.0.1:"), ready
        return proc, int(ready.rsplit(":", 1)[1]), resumed

    def test_sigkill_restart_resumes_bit_identical(self, tmp_path):
        from repro.service import CometClient

        state_dir = tmp_path / "state"
        proc, port, resumed = self._spawn(state_dir)
        try:
            assert resumed.endswith("resumed 0 persisted session(s)")
            with CometClient(port, timeout=120) as client:
                client.create("durable", _PARAMS)
                client.step("durable")
                # Drain the write-behind queue so the kill cannot race
                # the snapshot we assert on.
                deadline = time.monotonic() + 30
                while client.status()["store"]["pending_writes"]:
                    assert time.monotonic() < deadline, "store never drained"
                    time.sleep(0.05)
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        proc, port, resumed = self._spawn(state_dir)
        try:
            assert resumed.endswith("resumed 1 persisted session(s)")
            with CometClient(port, timeout=120) as client:
                assert client.status()["sessions"] == ["durable"]
                result = client.run("durable")
                assert result["finished"] is True
                assert result["trace"] == _reference_trace_dict()
                assert client.shutdown_server() == {"shutdown": True}
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
