"""Stateful property test for the durable session service.

A bounded Hypothesis :class:`RuleBasedStateMachine` drives random
create/step/status/crash/restart/close sequences against a
``CometService`` wired to a ``DirectorySessionStore`` (exactly what
``serve --state-dir`` builds), alongside a *shadow* in-process session
constructed from the same parameters. The machine's contract:

- after any interleaving of clean and dirty (write-behind queue lost)
  crashes, the served session's trace is a bit-identical prefix of the
  shadow's — a resumed session replays lost iterations exactly;
- verbs against unknown or duplicate names fail with structured errors,
  never by corrupting the registry or the store;
- squeezing the shared featurization/FD cache to a starvation-level
  byte budget mid-run (``cache_pressure``) evicts entries but never
  surfaces an error or changes a single trace byte.

Kept deliberately small (a ~100-row slice, a handful of examples) so the
sweep stays in tier-1 territory; the exhaustive single-scenario variants
live in ``test_store.py``.
"""

import shutil
import tempfile
from pathlib import Path

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.cache import DEFAULT_MAX_BYTES, cache_stats, set_cache_budget
from repro.experiments import Configuration, build_polluted
from repro.service import CometService
from repro.service.service import _SessionRecord
from repro.session import CleaningSession
from repro.store import DirectorySessionStore

_PARAMS = {
    "dataset": "cmc",
    "rows": 100,
    "algorithm": "lor",
    "budget": 10.0,
    "step": 0.05,
    "seed": 5,
}


def _shadow_session() -> CleaningSession:
    """The uninterrupted twin of what the ``create`` verb builds."""
    config = Configuration(
        dataset=_PARAMS["dataset"],
        algorithm=_PARAMS["algorithm"],
        error_types=("missing",),
        n_rows=_PARAMS["rows"],
        budget=_PARAMS["budget"],
        step=_PARAMS["step"],
    )
    dataset = build_polluted(config, seed=_PARAMS["seed"])
    return CleaningSession.create(
        dataset,
        algorithm=config.algorithm,
        error_types=list(config.error_types),
        budget=config.budget,
        cost_model=config.make_cost_model(),
        config=config.make_comet_config(),
        rng=_PARAMS["seed"],
    )


def _records(session: CleaningSession) -> list[dict]:
    trace = session.state.trace
    return [] if trace is None else [r.to_dict() for r in trace.records]


class DurableServiceMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.root = Path(tempfile.mkdtemp(prefix="repro-store-"))
        self.shadow: CleaningSession | None = None
        self._open_service()

    def _open_service(self) -> None:
        self.store = DirectorySessionStore(self.root)
        self.service = CometService(store=self.store)
        self.service.resume_persisted()

    def _compare_prefix(self) -> None:
        """The served trace must be a bit-identical prefix of the shadow's.

        The shadow is stepped lazily up to the served iteration first, so
        it is never behind; after a dirty crash the service may be behind
        the shadow — replaying must reproduce the shadow's records.
        """
        assert self.shadow is not None
        served = self.service.session("s")
        while (
            self.shadow.state.iteration < served.state.iteration
            and not self.shadow.is_finished
        ):
            self.shadow.step()
        served_records = _records(served)
        shadow_records = _records(self.shadow)
        assert served_records == shadow_records[: len(served_records)]

    # ------------------------------------------------------------------ #
    # rules
    # ------------------------------------------------------------------ #
    @precondition(lambda self: self.shadow is None)
    @rule()
    def create(self) -> None:
        response = self.service.handle(
            {"action": "create", "name": "s", "params": _PARAMS}
        )
        assert response["ok"], response
        self.shadow = _shadow_session()

    @precondition(lambda self: self.shadow is not None)
    @rule()
    def create_duplicate_is_structured_error(self) -> None:
        # Holds whether "s" is live or a cold post-crash marker: the
        # name is taken either way.
        response = self.service.handle(
            {"action": "create", "name": "s", "params": _PARAMS}
        )
        assert not response["ok"]
        assert response["error"]["type"] == "ValueError"
        assert "already exists" in response["error"]["message"]

    @rule()
    def step_unknown_is_structured_error(self) -> None:
        response = self.service.handle({"action": "step", "name": "ghost"})
        assert not response["ok"]
        assert response["error"]["type"] == "KeyError"

    @precondition(lambda self: self.shadow is not None)
    @rule()
    def step(self) -> None:
        response = self.service.handle({"action": "step", "name": "s"})
        assert response["ok"], response
        served = self.service.session("s")
        assert response["result"]["finished"] == served.is_finished
        self._compare_prefix()

    @precondition(lambda self: self.shadow is not None)
    @rule()
    def status(self) -> None:
        response = self.service.handle({"action": "status", "name": "s"})
        assert response["ok"], response
        self._compare_prefix()
        # Never ahead of the shadow: crashes only ever lose progress
        # (_compare_prefix just caught the shadow up to the service).
        assert response["result"]["iteration"] <= self.shadow.state.iteration

    @rule()
    def cache_pressure(self) -> None:
        """Shrink the shared cache to a starvation budget, then restore.

        Eviction is the quota's only enforcement mechanism: no verb may
        fail, and the next ``step``'s trace bytes (checked by
        ``_compare_prefix``) must not depend on what survived.
        """
        set_cache_budget(16 * 1024)
        assert cache_stats()["total_bytes"] <= 16 * 1024
        if self.shadow is not None:
            response = self.service.handle({"action": "step", "name": "s"})
            assert response["ok"], response
            self._compare_prefix()
        set_cache_budget(DEFAULT_MAX_BYTES)

    @rule()
    def crash_clean(self) -> None:
        """Kill after the write-behind queue drained: nothing is lost."""
        self.store.flush()
        self.store.abort()
        self.service.shutdown()
        self._open_service()

    @rule()
    def crash_dirty(self) -> None:
        """Kill with the queue possibly non-empty: the tail may be lost."""
        self.store.abort()
        self.service.shutdown()
        self._open_service()

    @precondition(lambda self: self.shadow is not None)
    @rule()
    def close_and_forget(self) -> None:
        response = self.service.handle({"action": "close", "name": "s"})
        assert response["ok"], response
        assert "s" not in self.store
        self.shadow.close()
        self.shadow = None

    # ------------------------------------------------------------------ #
    # invariants
    # ------------------------------------------------------------------ #
    @invariant()
    def live_session_matches_shadow(self) -> None:
        # Only when the session is already live: the invariant must not
        # force rehydration, or the lazy path would never be exercised.
        if self.shadow is None:
            return
        with self.service._lock:
            record = self.service._sessions.get("s")
        if isinstance(record, _SessionRecord):
            self._compare_prefix()

    @invariant()
    def store_is_consistent(self) -> None:
        stats = self.store.stats()
        assert stats["write_errors"] == 0
        assert stats["last_error"] is None

    def teardown(self) -> None:
        try:
            self.service.shutdown()
        finally:
            set_cache_budget(DEFAULT_MAX_BYTES)
            shutil.rmtree(self.root, ignore_errors=True)


TestDurableService = DurableServiceMachine.TestCase
TestDurableService.settings = settings(
    max_examples=3, stateful_step_count=10, deadline=None
)
