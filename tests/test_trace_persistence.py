"""Round-trip tests for trace persistence (to_dict/from_dict, save/load)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CleaningTrace, IterationRecord


def _trace():
    trace = CleaningTrace(initial_f1=0.42)
    trace.append(IterationRecord(
        iteration=1, feature="income", error="missing", cost=2.0,
        budget_spent=2.0, f1_before=0.42, f1_after=0.50, predicted_f1=0.51,
        used_fallback=False, from_buffer=False,
        rejected=[("age", "noise"), ("city", "categorical")],
    ))
    trace.append(IterationRecord(
        iteration=2, feature="age", error="noise", cost=1.0,
        budget_spent=3.0, f1_before=0.50, f1_after=0.49,
        used_fallback=True, reverted=False,
    ))
    return trace


class TestRoundTrip:
    def test_dict_round_trip(self):
        original = _trace()
        rebuilt = CleaningTrace.from_dict(original.to_dict())
        assert rebuilt.initial_f1 == original.initial_f1
        assert len(rebuilt.records) == 2
        assert rebuilt.records[0].rejected == [("age", "noise"), ("city", "categorical")]
        assert rebuilt.records[1].used_fallback

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "trace.json"
        original = _trace()
        original.save(path)
        rebuilt = CleaningTrace.load(path)
        grid = np.arange(0.0, 4.0)
        assert rebuilt.f1_at(grid).tolist() == original.f1_at(grid).tolist()
        assert rebuilt.prediction_errors() == original.prediction_errors()

    def test_empty_trace_round_trip(self, tmp_path):
        path = tmp_path / "empty.json"
        CleaningTrace(initial_f1=0.9).save(path)
        rebuilt = CleaningTrace.load(path)
        assert rebuilt.initial_f1 == 0.9
        assert rebuilt.records == []

    @given(
        st.floats(0.0, 1.0),
        st.lists(st.tuples(st.floats(0.1, 3.0), st.floats(0.0, 1.0)), max_size=10),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_round_trip_preserves_curve(self, initial, steps):
        trace = CleaningTrace(initial_f1=initial)
        spent = 0.0
        for i, (cost, f1) in enumerate(steps, start=1):
            spent += cost
            trace.append(IterationRecord(
                iteration=i, feature="f", error="missing", cost=cost,
                budget_spent=spent, f1_before=initial, f1_after=f1,
            ))
        rebuilt = CleaningTrace.from_dict(trace.to_dict())
        grid = np.linspace(0.0, spent + 1.0, 7)
        assert rebuilt.f1_at(grid).tolist() == trace.f1_at(grid).tolist()
